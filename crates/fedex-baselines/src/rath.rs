//! RATH-style automatic insight extraction — baseline 2 of §4.1.
//!
//! Modeled after the top-k insight mining of Tang et al. (SIGMOD 2017)
//! that powers RATH: enumerate `(dimension, measure, aggregate)` spaces
//! over a dataframe, compute the aggregate series, and score *insight
//! types* with a single commensurable score in `[0, 1]`:
//!
//! * **outstanding first / last** — the top (bottom) value is far above
//!   (below) what the rest of the distribution predicts, scored by its
//!   z-score squashed through a logistic;
//! * **trend** — for ordinal dimensions, the series has a strong linear
//!   trend, scored by the regression correlation `r²`.
//!
//! Like the original, the search is exhaustive over subspaces, which is
//! why it degrades on wide/large data (the paper reports RATH timing out
//! and exhausting memory on the Products dataset).

use std::collections::HashMap;

use fedex_frame::{DataFrame, Value};
use fedex_query::AggFunc;

/// Insight flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsightKind {
    /// One dimension value's aggregate towers above the rest.
    OutstandingFirst,
    /// One dimension value's aggregate sits far below the rest.
    OutstandingLast,
    /// The aggregate series trends with the (ordered) dimension.
    Trend,
}

impl InsightKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            InsightKind::OutstandingFirst => "outstanding-first",
            InsightKind::OutstandingLast => "outstanding-last",
            InsightKind::Trend => "trend",
        }
    }
}

/// One extracted insight.
#[derive(Debug, Clone)]
pub struct Insight {
    /// Dimension attribute.
    pub dimension: String,
    /// Measure attribute.
    pub measure: String,
    /// Aggregate function over the measure.
    pub agg: AggFunc,
    /// Insight flavor.
    pub kind: InsightKind,
    /// Commensurable score in `[0, 1]`.
    pub score: f64,
    /// The standout dimension value (outstanding insights).
    pub subject: Option<String>,
}

impl Insight {
    /// Human-readable description.
    pub fn describe(&self) -> String {
        match (&self.kind, &self.subject) {
            (InsightKind::Trend, _) => format!(
                "{}({}) trends with {}",
                self.agg.name(),
                self.measure,
                self.dimension
            ),
            (k, Some(s)) => format!(
                "{}({}) of {}={} is {}",
                self.agg.name(),
                self.measure,
                self.dimension,
                s,
                k.name()
            ),
            (k, None) => format!("{} in {}({})", k.name(), self.agg.name(), self.measure),
        }
    }
}

/// Logistic squash of a z-score into `[0, 1]`.
fn squash(z: f64) -> f64 {
    1.0 / (1.0 + (-(z - 2.0)).exp())
}

/// Aggregate series of `measure` by `dimension`.
fn series(df: &DataFrame, dimension: &str, measure: &str, agg: AggFunc) -> Vec<(Value, f64)> {
    let Ok(dim) = df.column(dimension) else {
        return Vec::new();
    };
    let Ok(mea) = df.column(measure) else {
        return Vec::new();
    };
    let mut acc: HashMap<Value, (f64, u64)> = HashMap::new();
    for i in 0..df.n_rows() {
        let d = dim.get(i);
        if d.is_null() {
            continue;
        }
        let m = mea.get(i).as_f64().unwrap_or(0.0);
        let e = acc.entry(d).or_insert((0.0, 0));
        e.0 += m;
        e.1 += 1;
    }
    let mut out: Vec<(Value, f64)> = acc
        .into_iter()
        .map(|(k, (s, c))| {
            let v = match agg {
                AggFunc::Sum => s,
                AggFunc::Count => c as f64,
                _ => {
                    if c == 0 {
                        0.0
                    } else {
                        s / c as f64
                    }
                }
            };
            (k, v)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn outstanding(series: &[(Value, f64)]) -> Option<(InsightKind, f64, String)> {
    if series.len() < 3 {
        return None;
    }
    let vals: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        return None;
    }
    let (max_i, max_v) = vals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, v)| (i, *v))?;
    let (min_i, min_v) = vals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, v)| (i, *v))?;
    let z_max = (max_v - mean) / sd;
    let z_min = (mean - min_v) / sd;
    if z_max >= z_min {
        Some((
            InsightKind::OutstandingFirst,
            squash(z_max),
            series[max_i].0.to_string(),
        ))
    } else {
        Some((
            InsightKind::OutstandingLast,
            squash(z_min),
            series[min_i].0.to_string(),
        ))
    }
}

fn trend(series: &[(Value, f64)]) -> Option<f64> {
    if series.len() < 5 {
        return None;
    }
    // r² of the least-squares fit of value against rank.
    let n = series.len() as f64;
    let xs: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
    let ys: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy * sxy) / (sxx * syy))
}

/// Extract the top-`k` insights of a dataframe.
///
/// `max_dimension_cardinality` prunes dimensions whose group count makes
/// charts unreadable (RATH uses a similar cut).
pub fn extract_insights(df: &DataFrame, k: usize) -> Vec<Insight> {
    const MAX_DIM_CARD: usize = 128;
    let mut out = Vec::new();
    for dim in df.schema().fields() {
        let Ok(dim_col) = df.column(&dim.name) else {
            continue;
        };
        let card = dim_col.n_distinct();
        if !(2..=MAX_DIM_CARD).contains(&card) {
            continue;
        }
        for mea in df.schema().fields() {
            if !mea.dtype.is_numeric() || mea.name == dim.name {
                continue;
            }
            for agg in [AggFunc::Mean, AggFunc::Sum, AggFunc::Count] {
                let s = series(df, &dim.name, &mea.name, agg);
                if let Some((kind, score, subject)) = outstanding(&s) {
                    out.push(Insight {
                        dimension: dim.name.clone(),
                        measure: mea.name.clone(),
                        agg,
                        kind,
                        score,
                        subject: Some(subject),
                    });
                }
                // Trends only make sense over ordered (numeric) dimensions.
                if dim.dtype.is_numeric() {
                    if let Some(r2) = trend(&s) {
                        out.push(Insight {
                            dimension: dim.name.clone(),
                            measure: mea.name.clone(),
                            agg,
                            kind: InsightKind::Trend,
                            score: r2,
                            subject: None,
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedex_frame::Column;

    #[test]
    fn finds_outstanding_value() {
        // County "Polk" dominates counts.
        let mut county = Vec::new();
        let mut total = Vec::new();
        for i in 0..300 {
            county.push(if i % 3 != 2 {
                "Polk"
            } else {
                ["Linn", "Scott"][i % 2]
            });
            total.push(10.0);
        }
        let df = DataFrame::new(vec![
            Column::from_strs("county", county),
            Column::from_floats("total", total),
        ])
        .unwrap();
        let insights = extract_insights(&df, 10);
        assert!(!insights.is_empty());
        let top = insights
            .iter()
            .find(|i| i.kind == InsightKind::OutstandingFirst && i.agg == AggFunc::Count);
        let top = top.expect("count-outstanding insight expected");
        assert_eq!(top.subject.as_deref(), Some("Polk"));
    }

    #[test]
    fn finds_trend() {
        let years: Vec<i64> = (0..200).map(|i| 1990 + (i % 20)).collect();
        let vals: Vec<f64> = years
            .iter()
            .map(|y| (*y - 1990) as f64 * 2.0 + 5.0)
            .collect();
        let df = DataFrame::new(vec![
            Column::from_ints("year", years),
            Column::from_floats("loudness", vals),
        ])
        .unwrap();
        let insights = extract_insights(&df, 20);
        let t = insights.iter().find(|i| i.kind == InsightKind::Trend);
        assert!(t.is_some());
        assert!(t.unwrap().score > 0.95);
    }

    #[test]
    fn scores_bounded() {
        let df = DataFrame::new(vec![
            Column::from_strs("g", vec!["a", "b", "c", "a", "b", "c"]),
            Column::from_floats("v", vec![1.0, 2.0, 30.0, 1.5, 2.5, 28.0]),
        ])
        .unwrap();
        for i in extract_insights(&df, 50) {
            assert!((0.0..=1.0).contains(&i.score), "score {}", i.score);
        }
    }

    #[test]
    fn constant_series_no_insight() {
        let df = DataFrame::new(vec![
            Column::from_strs("g", vec!["a", "b", "c"]),
            Column::from_floats("v", vec![2.0, 2.0, 2.0]),
        ])
        .unwrap();
        let insights = extract_insights(&df, 10);
        assert!(insights
            .iter()
            .all(|i| i.agg != AggFunc::Mean || i.score < 0.5));
    }

    #[test]
    fn describe_readable() {
        let i = Insight {
            dimension: "county".into(),
            measure: "total".into(),
            agg: AggFunc::Sum,
            kind: InsightKind::OutstandingFirst,
            score: 0.9,
            subject: Some("Polk".into()),
        };
        assert_eq!(
            i.describe(),
            "sum(total) of county=Polk is outstanding-first"
        );
    }
}
