//! Property-based tests of the query layer: relational-algebra laws and
//! provenance consistency.

use fedex_frame::{Column, DataFrame, Value};
use fedex_query::{Aggregate, ExploratoryStep, Expr, Operation, Provenance};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = DataFrame> {
    proptest::collection::vec((0u8..5, -20i64..20, -10f64..10.0), 1..50).prop_map(|rows| {
        let cats = ["a", "b", "c", "d", "e"];
        DataFrame::new(vec![
            Column::from_strs("g", rows.iter().map(|r| cats[r.0 as usize]).collect()),
            Column::from_ints("k", rows.iter().map(|r| r.1).collect()),
            Column::from_floats("v", rows.iter().map(|r| r.2).collect()),
        ])
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Filter provenance: output row `i` really is input row `kept[i]`.
    #[test]
    fn filter_provenance_is_exact(df in arb_frame(), t in -20i64..20) {
        let step = ExploratoryStep::run(
            vec![df],
            Operation::filter(Expr::col("k").gt(Expr::lit(t))),
        )
        .unwrap();
        let Provenance::Filter { kept } = &step.provenance else { panic!() };
        prop_assert_eq!(kept.len(), step.output.n_rows());
        for (out_row, &in_row) in kept.iter().enumerate() {
            prop_assert_eq!(
                step.output.row(out_row).unwrap(),
                step.inputs[0].row(in_row).unwrap()
            );
        }
    }

    /// Filters compose: (p AND q) = filter p then filter q.
    #[test]
    fn filter_conjunction_composes(df in arb_frame(), t1 in -20i64..20, t2 in -20i64..20) {
        let p = Expr::col("k").gt(Expr::lit(t1));
        let q = Expr::col("k").le(Expr::lit(t2));
        let both = Operation::filter(p.clone().and(q.clone()))
            .apply(std::slice::from_ref(&df))
            .unwrap();
        let seq = Operation::filter(q)
            .apply(&[Operation::filter(p).apply(&[df]).unwrap()])
            .unwrap();
        prop_assert_eq!(both.n_rows(), seq.n_rows());
        for r in 0..both.n_rows() {
            prop_assert_eq!(both.row(r).unwrap(), seq.row(r).unwrap());
        }
    }

    /// Group-by counts sum to the (filtered) row count, and group keys are
    /// distinct.
    #[test]
    fn group_by_counts_partition(df in arb_frame()) {
        let step = ExploratoryStep::run(
            vec![df],
            Operation::group_by(vec!["g"], vec![Aggregate::count(None)]),
        )
        .unwrap();
        let total: i64 = step
            .output
            .column("count")
            .unwrap()
            .numeric_values()
            .iter()
            .map(|&x| x as i64)
            .sum();
        prop_assert_eq!(total as usize, step.inputs[0].n_rows());
        let keys = step.output.column("g").unwrap();
        prop_assert_eq!(keys.n_distinct(), step.output.n_rows());
    }

    /// Group-by provenance assigns every row to a valid group, and the
    /// group's key equals the row's key.
    #[test]
    fn group_by_provenance_consistent(df in arb_frame()) {
        let step = ExploratoryStep::run(
            vec![df],
            Operation::group_by(vec!["g"], vec![Aggregate::mean("v")]),
        )
        .unwrap();
        let Provenance::GroupBy { group_of_row, n_groups } = &step.provenance else { panic!() };
        prop_assert_eq!(*n_groups, step.output.n_rows());
        let keys = step.output.column("g").unwrap();
        let input_keys = step.inputs[0].column("g").unwrap();
        for (row, g) in group_of_row.iter().enumerate() {
            let g = g.expect("no pre-filter → every row grouped") as usize;
            prop_assert!(g < *n_groups);
            prop_assert_eq!(keys.get(g), input_keys.get(row));
        }
    }

    /// Join row count equals the sum over keys of |left matches| × |right
    /// matches| (the defining property of an inner equi-join).
    #[test]
    fn join_cardinality(a in arb_frame(), b in arb_frame()) {
        let step = ExploratoryStep::run(
            vec![a.clone(), b.clone()],
            Operation::join("k", "k", "l", "r"),
        )
        .unwrap();
        let count_by = |df: &DataFrame| {
            let mut m = std::collections::HashMap::new();
            for v in df.column("k").unwrap().iter() {
                if !v.is_null() {
                    *m.entry(v).or_insert(0usize) += 1;
                }
            }
            m
        };
        let ca = count_by(&a);
        let cb = count_by(&b);
        let expected: usize = ca.iter().map(|(k, n)| n * cb.get(k).copied().unwrap_or(0)).sum();
        prop_assert_eq!(step.output.n_rows(), expected);
        // Provenance pairs actually join.
        let Provenance::Join { left_rows, right_rows } = &step.provenance else { panic!() };
        let lk = a.column("k").unwrap();
        let rk = b.column("k").unwrap();
        for (l, r) in left_rows.iter().zip(right_rows) {
            prop_assert_eq!(lk.get(*l), rk.get(*r));
        }
    }

    /// Union row count and provenance are exact.
    #[test]
    fn union_preserves_everything(a in arb_frame(), b in arb_frame()) {
        let step = ExploratoryStep::run(vec![a.clone(), b.clone()], Operation::Union).unwrap();
        prop_assert_eq!(step.output.n_rows(), a.n_rows() + b.n_rows());
        let Provenance::Union { source_of_row } = &step.provenance else { panic!() };
        for (out_row, &(src, row)) in source_of_row.iter().enumerate() {
            let expected = if src == 0 { a.row(row).unwrap() } else { b.row(row).unwrap() };
            prop_assert_eq!(step.output.row(out_row).unwrap(), expected);
        }
    }

    /// `rerun_without(∅)` reproduces the output exactly, for every op kind.
    #[test]
    fn rerun_without_nothing_is_identity(df in arb_frame()) {
        let ops = vec![
            Operation::filter(Expr::col("k").gt(Expr::lit(0i64))),
            Operation::group_by(vec!["g"], vec![Aggregate::sum("v")]),
        ];
        for op in ops {
            let step = ExploratoryStep::run(vec![df.clone()], op).unwrap();
            let out = step.rerun_without(0, &[]).unwrap();
            prop_assert_eq!(out.n_rows(), step.output.n_rows());
            for r in 0..out.n_rows() {
                let a = out.row(r).unwrap();
                let b = step.output.row(r).unwrap();
                for (x, y) in a.iter().zip(&b) {
                    match (x.as_f64(), y.as_f64()) {
                        (Some(xf), Some(yf)) => prop_assert!((xf - yf).abs() < 1e-9),
                        _ => prop_assert_eq!(x, y),
                    }
                }
            }
        }
    }

    /// The SQL printer/parser agree on predicates: parse(display(e))
    /// evaluates identically.
    #[test]
    fn predicate_display_reparses(df in arb_frame(), t in -20i64..20, u in -10i64..10) {
        let e = Expr::col("k")
            .gt(Expr::lit(t))
            .and(Expr::col("k").le(Expr::lit(u)).or(Expr::col("g").eq(Expr::lit("a"))));
        let sql = format!("SELECT * FROM t WHERE {e}");
        let parsed = fedex_query::parse_query(&sql).unwrap();
        let mut catalog = fedex_query::Catalog::new();
        catalog.register("t", df.clone());
        let step = parsed.to_step(&catalog).unwrap();
        let direct = Operation::filter(e).apply(&[df]).unwrap();
        prop_assert_eq!(step.output.n_rows(), direct.n_rows());
    }
}

#[test]
fn value_display_round_trips_through_parser() {
    // Spot-check literal forms the parser must accept.
    for (sql, rows) in [
        ("SELECT * FROM t WHERE k > -5", 2usize),
        ("SELECT * FROM t WHERE v >= 0.5", 1),
        ("SELECT * FROM t WHERE g == 'a'", 1),
    ] {
        let df = DataFrame::new(vec![
            Column::from_strs("g", vec!["a", "b"]),
            Column::from_ints("k", vec![1, 2]),
            Column::from_floats("v", vec![0.5, 0.1]),
        ])
        .unwrap();
        let mut catalog = fedex_query::Catalog::new();
        catalog.register("t", df);
        let step = fedex_query::parse_query(sql)
            .unwrap()
            .to_step(&catalog)
            .unwrap();
        assert_eq!(step.output.n_rows(), rows, "{sql}");
    }
}

// Silence an unused-variant lint for Value in this test crate.
#[allow(dead_code)]
fn _witness(_: Value) {}
