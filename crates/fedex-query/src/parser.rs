//! Parser for the SQL subset used by the paper's experiment workload
//! (Tables 2–3 in Appendix A).
//!
//! Supported shapes:
//!
//! ```sql
//! SELECT * FROM t WHERE <predicate>;
//! SELECT * FROM t1 INNER JOIN t2 ON t1.a = t2.b;
//! SELECT * FROM [SELECT * FROM t WHERE ...] WHERE <predicate>;   -- nested step
//! SELECT mean(x), max(y), count(z), count FROM t [WHERE ...] GROUP BY a, b;
//! SELECT * FROM t1 UNION SELECT * FROM t2 [UNION SELECT * FROM t3 ...];
//! ```
//!
//! `AVG` is accepted as an alias for `mean`. Keywords are case-insensitive;
//! string literals use single or double quotes. [`ParsedQuery::to_step`]
//! resolves table names against a [`Catalog`] and materializes the
//! [`ExploratoryStep`] — for a nested `FROM [subquery]`, the inner query is
//! evaluated first and its *output* becomes the step's input dataframe,
//! matching how the paper treats chained exploratory steps.

use std::collections::HashMap;

use fedex_frame::{DataFrame, Value};

use crate::error::QueryError;
use crate::expr::{BinOp, Expr};
use crate::ops::{AggFunc, Aggregate, Operation};
use crate::step::ExploratoryStep;
use crate::Result;

/// A named collection of dataframes that queries can reference.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, DataFrame>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, df: DataFrame) {
        self.tables.insert(name.into(), df);
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<&DataFrame> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Registered table names (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

/// A `FROM` source: a named table or a bracketed subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Reference to a catalog table.
    Table(String),
    /// Nested query whose output is the input dataframe of this step.
    Subquery(Box<ParsedQuery>),
}

impl Source {
    /// The display name used for join column prefixes.
    fn name(&self) -> String {
        match self {
            Source::Table(t) => t.clone(),
            Source::Subquery(_) => "sub".to_string(),
        }
    }
}

/// The `SELECT` list: `*` or a list of aggregates.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// Aggregate list (requires `GROUP BY`).
    Aggregates(Vec<Aggregate>),
}

/// Parsed form of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Select list.
    pub select: SelectList,
    /// Primary source.
    pub from: Source,
    /// Optional `INNER JOIN <source> ON l = r`.
    pub join: Option<JoinClause>,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` key columns (empty when absent).
    pub group_by: Vec<String>,
    /// Additional `UNION` arms (empty when absent). Each arm is the
    /// source of a `SELECT * FROM <source>` branch; the step's inputs are
    /// the primary source followed by every arm, concatenated by
    /// [`Operation::Union`].
    pub union_arms: Vec<Source>,
}

/// An `INNER JOIN ... ON a.x = b.y` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Right-hand source.
    pub right: Source,
    /// Join key on the left source (unqualified).
    pub left_on: String,
    /// Join key on the right source (unqualified).
    pub right_on: String,
}

impl ParsedQuery {
    /// Resolve sources against `catalog` and run the query as an
    /// [`ExploratoryStep`]. Subqueries are evaluated eagerly; the returned
    /// step describes the *outermost* operation only (its inputs are the
    /// subquery outputs), which is the unit FEDEX explains.
    pub fn to_step(&self, catalog: &Catalog) -> Result<ExploratoryStep> {
        let left_df = resolve_source(&self.from, catalog)?;
        if !self.union_arms.is_empty() {
            if !matches!(self.select, SelectList::Star)
                || self.join.is_some()
                || self.where_clause.is_some()
                || !self.group_by.is_empty()
            {
                return Err(QueryError::InvalidArgument(
                    "UNION queries must be SELECT * without JOIN, WHERE, or GROUP BY \
                     (push predicates into bracketed subqueries)"
                        .into(),
                ));
            }
            let mut inputs = vec![left_df];
            for arm in &self.union_arms {
                inputs.push(resolve_source(arm, catalog)?);
            }
            return ExploratoryStep::run(inputs, Operation::Union);
        }
        if let Some(join) = &self.join {
            if !matches!(self.select, SelectList::Star) || !self.group_by.is_empty() {
                return Err(QueryError::InvalidArgument(
                    "JOIN queries must be SELECT * without GROUP BY".into(),
                ));
            }
            let right_df = resolve_source(&join.right, catalog)?;
            let op = Operation::join(
                &join.left_on,
                &join.right_on,
                &self.from.name(),
                &join.right.name(),
            );
            return ExploratoryStep::run(vec![left_df, right_df], op);
        }
        if !self.group_by.is_empty() {
            let aggs = match &self.select {
                SelectList::Aggregates(a) => a.clone(),
                SelectList::Star => {
                    return Err(QueryError::InvalidArgument(
                        "GROUP BY requires an aggregate select list".into(),
                    ))
                }
            };
            let op = Operation::GroupBy {
                pre_filter: self.where_clause.clone(),
                keys: self.group_by.clone(),
                aggs,
            };
            return ExploratoryStep::run(vec![left_df], op);
        }
        match &self.where_clause {
            Some(pred) => ExploratoryStep::run(vec![left_df], Operation::filter(pred.clone())),
            None => Err(QueryError::InvalidArgument(
                "query must have a WHERE, GROUP BY, or JOIN to form an exploratory step".into(),
            )),
        }
    }
}

fn resolve_source(src: &Source, catalog: &Catalog) -> Result<DataFrame> {
    match src {
        Source::Table(name) => Ok(catalog.get(name)?.clone()),
        Source::Subquery(q) => Ok(q.to_step(catalog)?.output),
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Star,
    Comma,
    Semicolon,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Op(BinOp),
    Not,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Tok)>> {
        let mut out = Vec::new();
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            let start = self.pos;
            if self.pos >= self.src.len() {
                out.push((start, Tok::Eof));
                return Ok(out);
            }
            let c = self.src[self.pos];
            let tok = match c {
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b';' => {
                    self.pos += 1;
                    Tok::Semicolon
                }
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'[' => {
                    self.pos += 1;
                    Tok::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Tok::RBracket
                }
                b'.' => {
                    self.pos += 1;
                    Tok::Dot
                }
                b'=' => {
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                    }
                    Tok::Op(BinOp::Eq)
                }
                b'!' => {
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Op(BinOp::Ne)
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                b'<' => {
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Op(BinOp::Le)
                    } else {
                        Tok::Op(BinOp::Lt)
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Op(BinOp::Ge)
                    } else {
                        Tok::Op(BinOp::Gt)
                    }
                }
                b'\'' | b'"' => {
                    let quote = c;
                    self.pos += 1;
                    let s = self.read_until_quote(quote)?;
                    Tok::Str(s)
                }
                b'-' | b'0'..=b'9' => self.read_number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let ident = self.read_ident();
                    match ident.to_ascii_uppercase().as_str() {
                        "NOT" => Tok::Not,
                        "AND" => Tok::Op(BinOp::And),
                        "OR" => Tok::Op(BinOp::Or),
                        _ => Tok::Ident(ident),
                    }
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push((start, tok));
        }
    }

    fn read_until_quote(&mut self, quote: u8) -> Result<String> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(self.error("unterminated string literal"));
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in string literal"))?
            .to_string();
        self.pos += 1;
        Ok(s)
    }

    fn read_number(&mut self) -> Result<Tok> {
        let start = self.pos;
        if self.src[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !is_float && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit) => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if text == "-" {
            return Err(self.error("dangling '-'"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.error(e.to_string()))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.error(e.to_string()))
        }
    }

    fn read_ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string()
    }
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].1.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.toks[self.pos].0,
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_query(&mut self) -> Result<ParsedQuery> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_source()?;

        let mut join = None;
        if self.keyword_is("INNER") {
            self.next();
            self.expect_keyword("JOIN")?;
            let right = self.parse_source()?;
            self.expect_keyword("ON")?;
            let (l, r) = self.parse_join_condition(&from, &right)?;
            join = Some(JoinClause {
                right,
                left_on: l,
                right_on: r,
            });
        }

        let mut where_clause = None;
        if self.keyword_is("WHERE") {
            self.next();
            where_clause = Some(self.parse_expr()?);
        }

        let mut group_by = Vec::new();
        if self.keyword_is("GROUP") {
            self.next();
            self.expect_keyword("BY")?;
            loop {
                match self.next() {
                    Tok::Ident(name) => group_by.push(name),
                    other => {
                        return Err(self.error(format!("expected column name, found {other:?}")))
                    }
                }
                if matches!(self.peek(), Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let mut union_arms = Vec::new();
        while self.keyword_is("UNION") {
            self.next();
            if self.keyword_is("ALL") {
                // The paper's union keeps duplicates (§3.1); `UNION` and
                // `UNION ALL` are therefore the same operation here.
                self.next();
            }
            self.expect_keyword("SELECT")?;
            match self.next() {
                Tok::Star => {}
                other => {
                    return Err(self.error(format!("UNION arm must be SELECT *, found {other:?}")))
                }
            }
            self.expect_keyword("FROM")?;
            union_arms.push(self.parse_source()?);
        }
        if matches!(self.peek(), Tok::Semicolon) {
            self.next();
        }
        Ok(ParsedQuery {
            select,
            from,
            join,
            where_clause,
            group_by,
            union_arms,
        })
    }

    fn parse_select_list(&mut self) -> Result<SelectList> {
        if matches!(self.peek(), Tok::Star) {
            self.next();
            return Ok(SelectList::Star);
        }
        let mut aggs = Vec::new();
        loop {
            let func_name = match self.next() {
                Tok::Ident(s) => s,
                other => return Err(self.error(format!("expected aggregate, found {other:?}"))),
            };
            let func = match func_name.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "mean" | "avg" => AggFunc::Mean,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                other => return Err(self.error(format!("unknown aggregate function {other:?}"))),
            };
            let column = if matches!(self.peek(), Tok::LParen) {
                self.next();
                let col = match self.next() {
                    Tok::Ident(s) => Some(s),
                    Tok::Star => None,
                    other => return Err(self.error(format!("expected column, found {other:?}"))),
                };
                match self.next() {
                    Tok::RParen => {}
                    other => return Err(self.error(format!("expected ')', found {other:?}"))),
                }
                col
            } else if func == AggFunc::Count {
                None // bare `count`
            } else {
                return Err(self.error(format!("{} requires a column argument", func.name())));
            };
            if func != AggFunc::Count && column.is_none() {
                return Err(self.error(format!("{}(*) is not supported", func.name())));
            }
            aggs.push(Aggregate { func, column });
            if matches!(self.peek(), Tok::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(SelectList::Aggregates(aggs))
    }

    fn parse_source(&mut self) -> Result<Source> {
        match self.next() {
            Tok::Ident(name) => Ok(Source::Table(name)),
            Tok::LBracket => {
                let q = self.parse_query()?;
                match self.next() {
                    Tok::RBracket => Ok(Source::Subquery(Box::new(q))),
                    other => Err(self.error(format!("expected ']', found {other:?}"))),
                }
            }
            Tok::LParen => {
                let q = self.parse_query()?;
                match self.next() {
                    Tok::RParen => Ok(Source::Subquery(Box::new(q))),
                    other => Err(self.error(format!("expected ')', found {other:?}"))),
                }
            }
            other => Err(self.error(format!("expected table or subquery, found {other:?}"))),
        }
    }

    /// Parse `a.x = b.y` (or unqualified `x = y`), mapping qualifiers to
    /// the left/right sources.
    fn parse_join_condition(&mut self, left: &Source, right: &Source) -> Result<(String, String)> {
        let (q1, c1) = self.parse_qualified_column()?;
        match self.next() {
            Tok::Op(BinOp::Eq) => {}
            other => return Err(self.error(format!("expected '=', found {other:?}"))),
        }
        let (q2, c2) = self.parse_qualified_column()?;
        let left_name = left.name();
        let right_name = right.name();
        match (q1, q2) {
            (Some(a), Some(b)) if a == left_name && b == right_name => Ok((c1, c2)),
            (Some(a), Some(b)) if a == right_name && b == left_name => Ok((c2, c1)),
            (None, None) => Ok((c1, c2)),
            (a, b) => Err(self.error(format!(
                "join qualifiers {a:?}/{b:?} do not match sources {left_name}/{right_name}"
            ))),
        }
    }

    fn parse_qualified_column(&mut self) -> Result<(Option<String>, String)> {
        let first = match self.next() {
            Tok::Ident(s) => s,
            other => return Err(self.error(format!("expected column, found {other:?}"))),
        };
        if matches!(self.peek(), Tok::Dot) {
            self.next();
            match self.next() {
                Tok::Ident(col) => Ok((Some(first), col)),
                other => Err(self.error(format!("expected column after '.', found {other:?}"))),
            }
        } else {
            Ok((None, first))
        }
    }

    // expr := and_expr (OR and_expr)*
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Tok::Op(BinOp::Or)) {
            self.next();
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while matches!(self.peek(), Tok::Op(BinOp::And)) {
            self.next();
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Tok::Not) {
            self.next();
            return Ok(self.parse_not()?.not());
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_primary()?;
        match self.peek() {
            Tok::Op(op)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                let op = *op;
                self.next();
                let right = self.parse_primary()?;
                Ok(Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            _ => Ok(left),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Tok::Ident(name) => Ok(Expr::col(name)),
            Tok::Int(v) => Ok(Expr::lit(v)),
            Tok::Float(v) => Ok(Expr::lit(v)),
            Tok::Str(s) => Ok(Expr::Lit(Value::str(s))),
            Tok::LParen => {
                let e = self.parse_expr()?;
                match self.next() {
                    Tok::RParen => Ok(e),
                    other => Err(self.error(format!("expected ')', found {other:?}"))),
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse one query string.
pub fn parse_query(sql: &str) -> Result<ParsedQuery> {
    let toks = Lexer::new(sql).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.parse_query()?;
    match p.peek() {
        Tok::Eof => Ok(q),
        other => Err(p.error(format!("unexpected trailing input: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedex_frame::Column;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "spotify",
            DataFrame::new(vec![
                Column::from_ints("popularity", vec![70, 20, 80, 60]),
                Column::from_ints("year", vec![2010, 1980, 2015, 1995]),
                Column::from_floats("loudness", vec![-7.0, -12.0, -6.5, -10.0]),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            DataFrame::new(vec![
                Column::from_ints("item", vec![1, 2]),
                Column::from_strs("name", vec!["cola", "juice"]),
            ])
            .unwrap(),
        );
        c.register(
            "sales",
            DataFrame::new(vec![
                Column::from_ints("item", vec![1, 1, 2]),
                Column::from_floats("total", vec![5.0, 3.0, 9.0]),
            ])
            .unwrap(),
        );
        c
    }

    #[test]
    fn parse_filter_query() {
        let q = parse_query("SELECT * FROM spotify WHERE popularity > 65;").unwrap();
        assert_eq!(q.select, SelectList::Star);
        assert!(q.where_clause.is_some());
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 2);
    }

    #[test]
    fn parse_string_predicates() {
        let q = parse_query("SELECT * FROM products WHERE name != 'cola';").unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 1);
        let q = parse_query("SELECT * FROM products WHERE name == \"juice\"").unwrap();
        assert_eq!(q.to_step(&catalog()).unwrap().output.n_rows(), 1);
    }

    #[test]
    fn parse_group_by() {
        let q = parse_query(
            "SELECT mean(popularity), max(popularity), min(popularity) FROM spotify GROUP BY year;",
        )
        .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 4);
        assert_eq!(
            step.output.column_names(),
            vec![
                "year",
                "mean_popularity",
                "max_popularity",
                "min_popularity"
            ]
        );
    }

    #[test]
    fn parse_avg_alias_and_where_group_by() {
        let q = parse_query("select AVG(loudness) from spotify where year >= 1990 group by year")
            .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);
        assert!(step.output.has_column("mean_loudness"));
        // Input is the *unfiltered* dataframe: the whole step re-runs under
        // intervention.
        assert_eq!(step.inputs[0].n_rows(), 4);
    }

    #[test]
    fn parse_bare_count_group_by() {
        let q = parse_query("SELECT count FROM spotify GROUP BY year;").unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert!(step.output.has_column("count"));
    }

    #[test]
    fn parse_join() {
        let q = parse_query("SELECT * FROM products INNER JOIN sales ON products.item=sales.item;")
            .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);
        assert!(step.output.has_column("products_name"));
        assert!(step.output.has_column("sales_total"));
    }

    #[test]
    fn parse_reversed_join_qualifiers() {
        let q =
            parse_query("SELECT * FROM products INNER JOIN sales ON sales.item = products.item;")
                .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);
    }

    #[test]
    fn parse_nested_subquery() {
        let q = parse_query(
            "SELECT * FROM [SELECT * FROM spotify WHERE year > 1990] WHERE popularity > 65;",
        )
        .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        // inner: 3 rows (2010, 2015, 1995); outer: popularity > 65 → 2 rows
        assert_eq!(step.inputs[0].n_rows(), 3);
        assert_eq!(step.output.n_rows(), 2);
    }

    #[test]
    fn parse_and_or_not_predicates() {
        let q = parse_query(
            "SELECT * FROM spotify WHERE popularity > 50 AND year >= 2010 OR loudness < -11;",
        )
        .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);

        let q = parse_query("SELECT * FROM spotify WHERE NOT popularity > 50").unwrap();
        assert_eq!(q.to_step(&catalog()).unwrap().output.n_rows(), 1);
    }

    #[test]
    fn parse_negative_number() {
        let q = parse_query("SELECT * FROM spotify WHERE loudness > -12;").unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM t WHERE x >").is_err());
        assert!(parse_query("FROB * FROM t").is_err());
        assert!(parse_query("SELECT frob(x) FROM t GROUP BY x").is_err());
        assert!(parse_query("SELECT * FROM t WHERE x = 'unterminated").is_err());
    }

    #[test]
    fn unknown_table_rejected() {
        let q = parse_query("SELECT * FROM nope WHERE x > 1").unwrap();
        assert!(matches!(
            q.to_step(&catalog()),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn plain_select_star_is_not_a_step() {
        let q = parse_query("SELECT * FROM spotify").unwrap();
        assert!(q.to_step(&catalog()).is_err());
    }

    #[test]
    fn multi_key_group_by() {
        let q = parse_query("SELECT count FROM spotify GROUP BY year, popularity").unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_cols(), 3);
    }

    #[test]
    fn parse_union_query() {
        let q = parse_query("SELECT * FROM spotify UNION SELECT * FROM spotify;").unwrap();
        assert_eq!(q.union_arms.len(), 1);
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.inputs.len(), 2);
        assert_eq!(step.output.n_rows(), 8);
        assert_eq!(step.op.kind_name(), "union");

        // UNION ALL is the same operation; three-way unions chain.
        let q = parse_query(
            "SELECT * FROM spotify UNION ALL SELECT * FROM spotify UNION SELECT * FROM spotify",
        )
        .unwrap();
        assert_eq!(q.union_arms.len(), 2);
        assert_eq!(q.to_step(&catalog()).unwrap().output.n_rows(), 12);
    }

    #[test]
    fn union_arms_may_be_subqueries() {
        let q = parse_query(
            "SELECT * FROM [SELECT * FROM spotify WHERE year > 2000] \
             UNION SELECT * FROM [SELECT * FROM spotify WHERE year < 1990]",
        )
        .unwrap();
        let step = q.to_step(&catalog()).unwrap();
        assert_eq!(step.output.n_rows(), 3);
    }

    #[test]
    fn union_rejects_predicates_and_aggregates() {
        for sql in [
            "SELECT * FROM spotify WHERE year > 2000 UNION SELECT * FROM spotify",
            "SELECT count FROM spotify GROUP BY year UNION SELECT * FROM spotify",
            "SELECT * FROM products INNER JOIN sales ON products.item = sales.item \
             UNION SELECT * FROM spotify",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(q.to_step(&catalog()).is_err(), "{sql}");
        }
        // Aggregate arms do not even parse.
        assert!(parse_query("SELECT * FROM spotify UNION SELECT count FROM spotify").is_err());
    }

    #[test]
    fn union_schema_mismatch_is_an_error() {
        let q = parse_query("SELECT * FROM spotify UNION SELECT * FROM sales").unwrap();
        assert!(q.to_step(&catalog()).is_err());
    }
}
