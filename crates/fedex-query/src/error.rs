//! Error type for query planning and execution.

use std::fmt;

use fedex_frame::FrameError;

/// Errors produced by expression evaluation, operations, and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An underlying dataframe error.
    Frame(FrameError),
    /// An expression was applied to incompatible operand types.
    ExprType { context: String },
    /// The operation received the wrong number of input dataframes.
    ArityMismatch {
        op: &'static str,
        expected: &'static str,
        got: usize,
    },
    /// A group-by aggregate referenced a non-numeric column.
    NonNumericAggregate { column: String },
    /// SQL parse failure at a byte offset.
    Parse { offset: usize, message: String },
    /// A table referenced in `FROM` is not registered in the catalog.
    UnknownTable(String),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Frame(e) => write!(f, "{e}"),
            QueryError::ExprType { context } => write!(f, "type error in expression: {context}"),
            QueryError::ArityMismatch { op, expected, got } => {
                write!(f, "{op} expects {expected} input dataframe(s), got {got}")
            }
            QueryError::NonNumericAggregate { column } => {
                write!(f, "cannot aggregate non-numeric column {column:?}")
            }
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t:?}"),
            QueryError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for QueryError {
    fn from(e: FrameError) -> Self {
        QueryError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_frame_error() {
        let e: QueryError = FrameError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found"));
    }

    #[test]
    fn parse_error_display() {
        let e = QueryError::Parse {
            offset: 12,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("offset 12"));
    }
}
