//! Predicate and scalar expressions over dataframe rows.
//!
//! [`Expr`] is a small AST used for filter predicates (and join conditions
//! in the parser). Null semantics follow SQL: any comparison or arithmetic
//! with a null operand yields null, and a null predicate excludes the row.

use fedex_frame::{DataFrame, Value};

use crate::error::QueryError;
use crate::Result;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Expression AST node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self == rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }
    /// `self != rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ne, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Le, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Ge, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// All column names referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => out.push(c),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Evaluate the expression for every row of `df`, producing one boxed
    /// value per row.
    pub fn eval(&self, df: &DataFrame) -> Result<Vec<Value>> {
        let n = df.n_rows();
        match self {
            Expr::Col(name) => {
                let col = df.column(name)?;
                Ok((0..n).map(|i| col.get(i)).collect())
            }
            Expr::Lit(v) => Ok(vec![v.clone(); n]),
            Expr::Not(inner) => {
                let vals = inner.eval(df)?;
                Ok(vals
                    .into_iter()
                    .map(|v| match v {
                        Value::Bool(b) => Value::Bool(!b),
                        Value::Null => Value::Null,
                        _ => Value::Null,
                    })
                    .collect())
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval(df)?;
                let r = right.eval(df)?;
                let mut out = Vec::with_capacity(n);
                for (a, b) in l.into_iter().zip(r) {
                    out.push(apply_binop(*op, a, b)?);
                }
                Ok(out)
            }
        }
    }

    /// Evaluate the expression as a row mask: `true` where the predicate
    /// holds, `false` on `false` *or null* (SQL three-valued semantics).
    pub fn eval_mask(&self, df: &DataFrame) -> Result<Vec<bool>> {
        Ok(self
            .eval(df)?
            .into_iter()
            .map(|v| matches!(v, Value::Bool(true)))
            .collect())
    }
}

fn apply_binop(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        Lt | Le | Gt | Ge => {
            // Comparing a string to a number is a type error (a real bug in
            // the caller's predicate), not a silent false.
            let comparable = matches!(
                (&a, &b),
                (Value::Str(_), Value::Str(_))
                    | (Value::Bool(_), Value::Bool(_))
                    | (
                        Value::Int(_) | Value::Float(_),
                        Value::Int(_) | Value::Float(_)
                    )
            );
            if !comparable {
                return Err(QueryError::ExprType {
                    context: format!("cannot compare {a} {} {b}", op.symbol()),
                });
            }
            let ord = a.cmp(&b);
            Ok(Value::Bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        And | Or => match (&a, &b) {
            (Value::Bool(x), Value::Bool(y)) => {
                Ok(Value::Bool(if op == And { *x && *y } else { *x || *y }))
            }
            _ => Err(QueryError::ExprType {
                context: format!("{} requires boolean operands, got {a} and {b}", op.symbol()),
            }),
        },
        Add | Sub | Mul | Div => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(QueryError::ExprType {
                        context: "arithmetic requires numeric operands".to_string(),
                    })
                }
            };
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Ok(Value::Null);
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(r))
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedex_frame::Column;

    fn df() -> DataFrame {
        DataFrame::new(vec![
            Column::from_ints("pop", vec![70, 20, 80]),
            Column::from_floats("tempo", vec![100.5, 90.0, 120.0]),
            Column::from_strs("genre", vec!["rock", "pop", "rock"]),
            Column::from_opt_ints("year", vec![Some(1990), None, Some(2010)]),
        ])
        .unwrap()
    }

    #[test]
    fn comparison_mask() {
        let mask = Expr::col("pop")
            .gt(Expr::lit(65i64))
            .eval_mask(&df())
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let mask = Expr::col("tempo")
            .ge(Expr::lit(100i64))
            .eval_mask(&df())
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn string_equality() {
        let mask = Expr::col("genre")
            .eq(Expr::lit("rock"))
            .eval_mask(&df())
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
        let mask = Expr::col("genre")
            .ne(Expr::lit("rock"))
            .eval_mask(&df())
            .unwrap();
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn null_propagates_and_excludes() {
        let mask = Expr::col("year")
            .gt(Expr::lit(1980i64))
            .eval_mask(&df())
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn and_or_not() {
        let e = Expr::col("pop")
            .gt(Expr::lit(10i64))
            .and(Expr::col("genre").eq(Expr::lit("rock")));
        assert_eq!(e.eval_mask(&df()).unwrap(), vec![true, false, true]);

        let e = Expr::col("pop")
            .lt(Expr::lit(30i64))
            .or(Expr::col("pop").gt(Expr::lit(75i64)));
        assert_eq!(e.eval_mask(&df()).unwrap(), vec![false, true, true]);

        let e = Expr::col("genre").eq(Expr::lit("rock")).not();
        assert_eq!(e.eval_mask(&df()).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(Expr::col("tempo")),
            right: Box::new(Expr::lit(2.0)),
        };
        let vals = e.eval(&df()).unwrap();
        assert_eq!(vals[0], Value::Float(201.0));
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col("pop")),
            right: Box::new(Expr::lit(1i64)),
        };
        assert_eq!(e.eval(&df()).unwrap()[0], Value::Float(71.0));
    }

    #[test]
    fn type_errors_reported() {
        let e = Expr::col("genre").gt(Expr::lit(5i64));
        assert!(e.eval_mask(&df()).is_err());
        let e = Expr::col("pop").and(Expr::col("pop"));
        assert!(e.eval(&df()).is_err());
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(1.0)),
            right: Box::new(Expr::lit(0.0)),
        };
        assert_eq!(e.eval(&df()).unwrap()[0], Value::Null);
    }

    #[test]
    fn missing_column_error() {
        assert!(Expr::col("nope").eval(&df()).is_err());
    }

    #[test]
    fn referenced_columns_collects() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::col("c")));
        assert_eq!(e.referenced_columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::col("pop").gt(Expr::lit(65i64));
        assert_eq!(e.to_string(), "(pop > 65)");
        let e = Expr::col("g").eq(Expr::lit("x"));
        assert_eq!(e.to_string(), "(g == 'x')");
    }
}
