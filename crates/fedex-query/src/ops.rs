//! The four EDA operations of §3.1: filter, group-by, join, union.
//!
//! [`Operation`] is the specification `q` of an exploratory step; applying
//! it to input dataframes is [`Operation::apply`]. Group-by supports an
//! optional pre-filter so that steps like *"select avg(loudness) from d0
//! where year >= 1990 group by year"* form a single re-runnable operation
//! (required by the intervention-based contribution of Def. 3.3).

use std::collections::HashMap;

use fedex_frame::{Column, ColumnData, DType, DataFrame, Value};

use crate::error::QueryError;
use crate::expr::Expr;
use crate::Result;

/// Aggregate functions supported by group-by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count per group (column-independent).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Arithmetic mean of a numeric column.
    Mean,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
}

impl AggFunc {
    /// Lower-case name used in output column labels (`mean_loudness`).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Mean => "mean",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One aggregate in a group-by: a function over a source column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// Aggregate function.
    pub func: AggFunc,
    /// Source column in the input dataframe; `None` only for `Count`.
    pub column: Option<String>,
}

impl Aggregate {
    /// `count` (of rows) or `count(column)` — both count non-null rows of
    /// the column when one is given.
    pub fn count(column: Option<&str>) -> Self {
        Aggregate {
            func: AggFunc::Count,
            column: column.map(str::to_string),
        }
    }
    /// `mean(column)`
    pub fn mean(column: &str) -> Self {
        Aggregate {
            func: AggFunc::Mean,
            column: Some(column.to_string()),
        }
    }
    /// `sum(column)`
    pub fn sum(column: &str) -> Self {
        Aggregate {
            func: AggFunc::Sum,
            column: Some(column.to_string()),
        }
    }
    /// `min(column)`
    pub fn min(column: &str) -> Self {
        Aggregate {
            func: AggFunc::Min,
            column: Some(column.to_string()),
        }
    }
    /// `max(column)`
    pub fn max(column: &str) -> Self {
        Aggregate {
            func: AggFunc::Max,
            column: Some(column.to_string()),
        }
    }

    /// Output column label, e.g. `mean_loudness` or plain `count`.
    pub fn output_name(&self) -> String {
        match &self.column {
            Some(c) => format!("{}_{}", self.func.name(), c),
            None => self.func.name().to_string(),
        }
    }

    /// The input column this aggregate reads (None for bare `count`).
    pub fn source_column(&self) -> Option<&str> {
        self.column.as_deref()
    }
}

/// Specification of an exploratory operation `q`.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Keep rows satisfying the predicate. One input.
    Filter {
        /// Row predicate.
        predicate: Expr,
    },
    /// Group rows and aggregate. One input. The optional `pre_filter` is
    /// applied before grouping so the whole step re-runs under intervention.
    GroupBy {
        /// Optional filter applied before grouping.
        pre_filter: Option<Expr>,
        /// Grouping key columns (in output order).
        keys: Vec<String>,
        /// Aggregates (in output order).
        aggs: Vec<Aggregate>,
    },
    /// Inner equi-join of exactly two inputs. Output columns are prefixed
    /// `"{left_prefix}_"` / `"{right_prefix}_"` (matching the paper's
    /// `products_sales` view naming).
    Join {
        /// Join key in the left input.
        left_on: String,
        /// Join key in the right input.
        right_on: String,
        /// Prefix for left output columns.
        left_prefix: String,
        /// Prefix for right output columns.
        right_prefix: String,
    },
    /// Concatenate all inputs (same schema layout required). Two or more
    /// inputs.
    Union,
}

impl Operation {
    /// Filter operation.
    pub fn filter(predicate: Expr) -> Self {
        Operation::Filter { predicate }
    }

    /// Plain group-by (no pre-filter).
    pub fn group_by(keys: Vec<&str>, aggs: Vec<Aggregate>) -> Self {
        Operation::GroupBy {
            pre_filter: None,
            keys: keys.into_iter().map(str::to_string).collect(),
            aggs,
        }
    }

    /// Group-by with a filter applied first.
    pub fn filtered_group_by(pre_filter: Expr, keys: Vec<&str>, aggs: Vec<Aggregate>) -> Self {
        Operation::GroupBy {
            pre_filter: Some(pre_filter),
            keys: keys.into_iter().map(str::to_string).collect(),
            aggs,
        }
    }

    /// Inner join operation.
    pub fn join(left_on: &str, right_on: &str, left_prefix: &str, right_prefix: &str) -> Self {
        Operation::Join {
            left_on: left_on.to_string(),
            right_on: right_on.to_string(),
            left_prefix: left_prefix.to_string(),
            right_prefix: right_prefix.to_string(),
        }
    }

    /// Short human-readable label ("filter", "group-by", ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Operation::Filter { .. } => "filter",
            Operation::GroupBy { .. } => "group-by",
            Operation::Join { .. } => "join",
            Operation::Union => "union",
        }
    }

    /// Number of input dataframes the operation requires: exact for
    /// filter/group-by/join; union accepts `>= 2`.
    pub fn check_arity(&self, got: usize) -> Result<()> {
        let ok = match self {
            Operation::Filter { .. } | Operation::GroupBy { .. } => got == 1,
            Operation::Join { .. } => got == 2,
            Operation::Union => got >= 2,
        };
        if ok {
            Ok(())
        } else {
            Err(QueryError::ArityMismatch {
                op: self.kind_name(),
                expected: match self {
                    Operation::Filter { .. } | Operation::GroupBy { .. } => "1",
                    Operation::Join { .. } => "2",
                    Operation::Union => ">=2",
                },
                got,
            })
        }
    }

    /// Apply the operation to input dataframes, producing the output
    /// dataframe `d_out`.
    pub fn apply(&self, inputs: &[DataFrame]) -> Result<DataFrame> {
        Ok(self.apply_traced(inputs)?.0)
    }

    /// Apply the operation and additionally report row [`Provenance`] —
    /// which input rows produced which output rows. Provenance is what lets
    /// FEDEX compute the intervention `q(D_in − R)` of Def. 3.3
    /// incrementally instead of re-running `q` per set-of-rows.
    pub fn apply_traced(&self, inputs: &[DataFrame]) -> Result<(DataFrame, Provenance)> {
        self.check_arity(inputs.len())?;
        match self {
            Operation::Filter { predicate } => {
                let mask = predicate.eval_mask(&inputs[0])?;
                let kept: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &k)| k.then_some(i))
                    .collect();
                let out = inputs[0].take(&kept)?;
                Ok((out, Provenance::Filter { kept }))
            }
            Operation::GroupBy {
                pre_filter,
                keys,
                aggs,
            } => {
                let pass: Option<Vec<bool>> = match pre_filter {
                    Some(f) => Some(f.eval_mask(&inputs[0])?),
                    None => None,
                };
                group_by_traced(&inputs[0], pass.as_deref(), keys, aggs)
            }
            Operation::Join {
                left_on,
                right_on,
                left_prefix,
                right_prefix,
            } => inner_join_traced(
                &inputs[0],
                &inputs[1],
                left_on,
                right_on,
                left_prefix,
                right_prefix,
            ),
            Operation::Union => {
                let mut acc = inputs[0].clone();
                let mut sources: Vec<(usize, usize)> =
                    (0..inputs[0].n_rows()).map(|r| (0, r)).collect();
                for (k, df) in inputs[1..].iter().enumerate() {
                    acc = acc.vstack(df)?;
                    sources.extend((0..df.n_rows()).map(|r| (k + 1, r)));
                }
                Ok((
                    acc,
                    Provenance::Union {
                        source_of_row: sources,
                    },
                ))
            }
        }
    }
}

/// Row-level provenance of one operation application: how output rows map
/// back to input rows.
#[derive(Debug, Clone)]
pub enum Provenance {
    /// `kept[i]` is the input row that became output row `i`.
    Filter {
        /// Input row index per output row.
        kept: Vec<usize>,
    },
    /// Group-by: per *input* row, the output group it landed in (`None`
    /// when dropped by the pre-filter).
    GroupBy {
        /// Group id per input row.
        group_of_row: Vec<Option<u32>>,
        /// Number of output groups.
        n_groups: usize,
    },
    /// Join: per output row, the contributing row on each side.
    Join {
        /// Left input row per output row.
        left_rows: Vec<usize>,
        /// Right input row per output row.
        right_rows: Vec<usize>,
    },
    /// Union: per output row, `(input index, row within that input)`.
    Union {
        /// Source of each output row.
        source_of_row: Vec<(usize, usize)>,
    },
}

impl Provenance {
    /// The per-output-row source rows on input `input_idx`, when stored as
    /// a plain slice: filter provenance (input 0) and either join side.
    /// `None` for union (interleaved sources) and group-by (no row-level
    /// output mapping).
    pub fn source_rows(&self, input_idx: usize) -> Option<&[usize]> {
        match self {
            Provenance::Filter { kept } if input_idx == 0 => Some(kept),
            Provenance::Join {
                left_rows,
                right_rows,
            } => Some(if input_idx == 0 {
                left_rows
            } else {
                right_rows
            }),
            _ => None,
        }
    }

    /// Visit `(out_row, in_row)` for every output row sourced from input
    /// `input_idx`, in output-row order. Group-by provenance maps input
    /// rows to *groups*, not to output rows, so it visits nothing.
    pub fn for_each_out_row_from(&self, input_idx: usize, mut f: impl FnMut(usize, usize)) {
        if let Some(rows) = self.source_rows(input_idx) {
            for (out_row, &in_row) in rows.iter().enumerate() {
                f(out_row, in_row);
            }
            return;
        }
        if let Provenance::Union { source_of_row } = self {
            for (out_row, &(src, in_row)) in source_of_row.iter().enumerate() {
                if src == input_idx {
                    f(out_row, in_row);
                }
            }
        }
    }
}

/// Hash-group the rows of `df` by `keys` and evaluate `aggs` per group.
///
/// Group order is the first-appearance order of each key combination,
/// making results deterministic.
pub fn group_by(df: &DataFrame, keys: &[String], aggs: &[Aggregate]) -> Result<DataFrame> {
    Ok(group_by_traced(df, None, keys, aggs)?.0)
}

/// [`group_by`] with an optional row-pass mask (the group-by pre-filter)
/// and provenance output.
pub fn group_by_traced(
    df: &DataFrame,
    pass: Option<&[bool]>,
    keys: &[String],
    aggs: &[Aggregate],
) -> Result<(DataFrame, Provenance)> {
    if keys.is_empty() {
        return Err(QueryError::InvalidArgument(
            "group-by requires at least one key".into(),
        ));
    }
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| df.column(k))
        .collect::<std::result::Result<_, _>>()?;

    // Group assignment: map each (passing) row to a group id.
    let n = df.n_rows();
    let passes = |i: usize| pass.is_none_or(|m| m[i]);
    let mut group_of_row: Vec<Option<u32>> = Vec::with_capacity(n);
    let mut group_rows: Vec<Vec<usize>> = Vec::new();
    let mut first_row_of_group: Vec<usize> = Vec::new();

    if key_cols.len() == 1 {
        // Fast path: single key hashed by its native representation.
        match key_cols[0].data() {
            ColumnData::Str(s) => {
                let mut map: HashMap<u32, u32> = HashMap::new();
                for i in 0..n {
                    if !passes(i) {
                        group_of_row.push(None);
                        continue;
                    }
                    let code = s.code(i);
                    let gid = *map.entry(code).or_insert_with(|| {
                        group_rows.push(Vec::new());
                        first_row_of_group.push(i);
                        (group_rows.len() - 1) as u32
                    });
                    group_of_row.push(Some(gid));
                    group_rows[gid as usize].push(i);
                }
            }
            ColumnData::Int(v) => {
                let mut map: HashMap<Option<i64>, u32> = HashMap::new();
                for (i, key) in v.iter().enumerate() {
                    if !passes(i) {
                        group_of_row.push(None);
                        continue;
                    }
                    let gid = *map.entry(*key).or_insert_with(|| {
                        group_rows.push(Vec::new());
                        first_row_of_group.push(i);
                        (group_rows.len() - 1) as u32
                    });
                    group_of_row.push(Some(gid));
                    group_rows[gid as usize].push(i);
                }
            }
            _ => group_generic(
                &key_cols,
                n,
                &passes,
                &mut group_of_row,
                &mut group_rows,
                &mut first_row_of_group,
            ),
        }
    } else {
        group_generic(
            &key_cols,
            n,
            &passes,
            &mut group_of_row,
            &mut group_rows,
            &mut first_row_of_group,
        );
    }

    // Key output columns: the key value of each group's first row.
    let mut out_cols: Vec<Column> = Vec::with_capacity(keys.len() + aggs.len());
    for kc in &key_cols {
        out_cols.push(kc.take(&first_row_of_group));
    }

    // Aggregate output columns.
    for agg in aggs {
        out_cols.push(eval_aggregate(df, agg, &group_rows)?);
    }
    let n_groups = group_rows.len();
    Ok((
        DataFrame::new(out_cols)?,
        Provenance::GroupBy {
            group_of_row,
            n_groups,
        },
    ))
}

fn group_generic(
    key_cols: &[&Column],
    n: usize,
    passes: &dyn Fn(usize) -> bool,
    group_of_row: &mut Vec<Option<u32>>,
    group_rows: &mut Vec<Vec<usize>>,
    first_row_of_group: &mut Vec<usize>,
) {
    let mut map: HashMap<Vec<Value>, u32> = HashMap::new();
    for i in 0..n {
        if !passes(i) {
            group_of_row.push(None);
            continue;
        }
        let key: Vec<Value> = key_cols.iter().map(|c| c.get(i)).collect();
        let gid = *map.entry(key).or_insert_with(|| {
            group_rows.push(Vec::new());
            first_row_of_group.push(i);
            (group_rows.len() - 1) as u32
        });
        group_of_row.push(Some(gid));
        group_rows[gid as usize].push(i);
    }
}

fn eval_aggregate(df: &DataFrame, agg: &Aggregate, group_rows: &[Vec<usize>]) -> Result<Column> {
    let name = agg.output_name();
    match (&agg.func, agg.source_column()) {
        (AggFunc::Count, None) => {
            let counts: Vec<i64> = group_rows.iter().map(|g| g.len() as i64).collect();
            Ok(Column::from_ints(name, counts))
        }
        (AggFunc::Count, Some(col_name)) => {
            let col = df.column(col_name)?;
            let counts: Vec<i64> = group_rows
                .iter()
                .map(|g| g.iter().filter(|&&i| !col.get(i).is_null()).count() as i64)
                .collect();
            Ok(Column::from_ints(name, counts))
        }
        (func, Some(col_name)) => {
            let col = df.column(col_name)?;
            if !col.dtype().is_numeric() && col.dtype() != DType::Bool {
                return Err(QueryError::NonNumericAggregate {
                    column: col_name.to_string(),
                });
            }
            let mut out: Vec<Option<f64>> = Vec::with_capacity(group_rows.len());
            for g in group_rows {
                let vals = g.iter().filter_map(|&i| col.get(i).as_f64());
                let v = match func {
                    AggFunc::Sum => Some(vals.sum::<f64>()),
                    AggFunc::Mean => {
                        let (mut s, mut c) = (0.0, 0usize);
                        for v in vals {
                            s += v;
                            c += 1;
                        }
                        if c == 0 {
                            None
                        } else {
                            Some(s / c as f64)
                        }
                    }
                    AggFunc::Min => vals.fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.min(v)))
                    }),
                    AggFunc::Max => vals.fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    }),
                    AggFunc::Count => unreachable!("handled above"),
                };
                out.push(v);
            }
            Ok(Column::from_opt_floats(name, out))
        }
        (func, None) => Err(QueryError::InvalidArgument(format!(
            "aggregate {} requires a column",
            func.name()
        ))),
    }
}

/// Inner hash equi-join. Null keys never match (SQL semantics). Output
/// columns are `"{prefix}_{name}"` for every input column, left first.
pub fn inner_join(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    left_prefix: &str,
    right_prefix: &str,
) -> Result<DataFrame> {
    Ok(inner_join_traced(left, right, left_on, right_on, left_prefix, right_prefix)?.0)
}

/// [`inner_join`] with provenance output.
pub fn inner_join_traced(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    left_prefix: &str,
    right_prefix: &str,
) -> Result<(DataFrame, Provenance)> {
    let lk = left.column(left_on)?;
    let rk = right.column(right_on)?;

    // Build side: hash the right input.
    let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
    for i in 0..right.n_rows() {
        let v = rk.get(i);
        if !v.is_null() {
            table.entry(v).or_default().push(i);
        }
    }
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    for i in 0..left.n_rows() {
        let v = lk.get(i);
        if v.is_null() {
            continue;
        }
        if let Some(matches) = table.get(&v) {
            for &j in matches {
                left_idx.push(i);
                right_idx.push(j);
            }
        }
    }

    let mut cols: Vec<Column> = Vec::with_capacity(left.n_cols() + right.n_cols());
    for c in left.columns() {
        cols.push(
            c.take(&left_idx)
                .renamed(format!("{left_prefix}_{}", c.name())),
        );
    }
    for c in right.columns() {
        cols.push(
            c.take(&right_idx)
                .renamed(format!("{right_prefix}_{}", c.name())),
        );
    }
    Ok((
        DataFrame::new(cols)?,
        Provenance::Join {
            left_rows: left_idx,
            right_rows: right_idx,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn songs() -> DataFrame {
        DataFrame::new(vec![
            Column::from_ints("year", vec![1991, 1991, 2014, 2014, 2013]),
            Column::from_floats("loudness", vec![-11.0, -11.2, -7.8, -8.0, -8.2]),
            Column::from_strs("decade", vec!["1990s", "1990s", "2010s", "2010s", "2010s"]),
        ])
        .unwrap()
    }

    #[test]
    fn filter_applies_predicate() {
        let op = Operation::filter(Expr::col("year").gt(Expr::lit(2000i64)));
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 3);
    }

    #[test]
    fn group_by_single_key_mean() {
        let op = Operation::group_by(vec!["year"], vec![Aggregate::mean("loudness")]);
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.column_names(), vec!["year", "mean_loudness"]);
        // group order = first appearance: 1991, 2014, 2013
        assert_eq!(out.get(0, "year").unwrap(), Value::Int(1991));
        assert!((out.get(0, "mean_loudness").unwrap().as_f64().unwrap() - (-11.1)).abs() < 1e-9);
    }

    #[test]
    fn group_by_str_key_count() {
        let op = Operation::group_by(vec!["decade"], vec![Aggregate::count(None)]);
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.get(0, "count").unwrap(), Value::Int(2));
        assert_eq!(out.get(1, "count").unwrap(), Value::Int(3));
    }

    #[test]
    fn group_by_multi_key() {
        let op = Operation::group_by(vec!["decade", "year"], vec![Aggregate::max("loudness")]);
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.column_names(), vec!["decade", "year", "max_loudness"]);
    }

    #[test]
    fn group_by_min_max_sum() {
        let op = Operation::group_by(
            vec!["decade"],
            vec![
                Aggregate::min("loudness"),
                Aggregate::max("loudness"),
                Aggregate::sum("loudness"),
            ],
        );
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.get(0, "min_loudness").unwrap(), Value::Float(-11.2));
        assert_eq!(out.get(0, "max_loudness").unwrap(), Value::Float(-11.0));
        assert!((out.get(1, "sum_loudness").unwrap().as_f64().unwrap() - (-24.0)).abs() < 1e-9);
    }

    #[test]
    fn filtered_group_by_runs_as_one_step() {
        let op = Operation::filtered_group_by(
            Expr::col("year").ge(Expr::lit(2014i64)),
            vec!["year"],
            vec![Aggregate::mean("loudness")],
        );
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.get(0, "year").unwrap(), Value::Int(2014));
    }

    #[test]
    fn group_by_rejects_string_aggregate() {
        let op = Operation::group_by(vec!["year"], vec![Aggregate::mean("decade")]);
        assert!(matches!(
            op.apply(&[songs()]),
            Err(QueryError::NonNumericAggregate { .. })
        ));
    }

    #[test]
    fn count_column_skips_nulls() {
        let df = DataFrame::new(vec![
            Column::from_strs("g", vec!["a", "a", "b"]),
            Column::from_opt_ints("x", vec![Some(1), None, Some(2)]),
        ])
        .unwrap();
        let op = Operation::group_by(vec!["g"], vec![Aggregate::count(Some("x"))]);
        let out = op.apply(&[df]).unwrap();
        assert_eq!(out.get(0, "count_x").unwrap(), Value::Int(1));
        assert_eq!(out.get(1, "count_x").unwrap(), Value::Int(1));
    }

    #[test]
    fn join_matches_and_prefixes() {
        let products = DataFrame::new(vec![
            Column::from_ints("item", vec![1, 2, 3]),
            Column::from_strs("name", vec!["cola", "juice", "water"]),
        ])
        .unwrap();
        let sales = DataFrame::new(vec![
            Column::from_ints("item", vec![1, 1, 3, 9]),
            Column::from_floats("total", vec![5.0, 6.0, 2.0, 1.0]),
        ])
        .unwrap();
        let op = Operation::join("item", "item", "products", "sales");
        let out = op.apply(&[products, sales]).unwrap();
        assert_eq!(out.n_rows(), 3); // item 9 unmatched, item 1 matched twice
        assert_eq!(
            out.column_names(),
            vec![
                "products_item",
                "products_name",
                "sales_item",
                "sales_total"
            ]
        );
    }

    #[test]
    fn join_null_keys_never_match() {
        let l = DataFrame::new(vec![Column::from_opt_ints("k", vec![None, Some(1)])]).unwrap();
        let r = DataFrame::new(vec![Column::from_opt_ints("k", vec![None, Some(1)])]).unwrap();
        let op = Operation::join("k", "k", "l", "r");
        let out = op.apply(&[l, r]).unwrap();
        assert_eq!(out.n_rows(), 1);
    }

    #[test]
    fn union_stacks() {
        let op = Operation::Union;
        let out = op.apply(&[songs(), songs()]).unwrap();
        assert_eq!(out.n_rows(), 10);
    }

    #[test]
    fn arity_checked() {
        let op = Operation::filter(Expr::col("x").gt(Expr::lit(0i64)));
        assert!(matches!(
            op.apply(&[songs(), songs()]),
            Err(QueryError::ArityMismatch { .. })
        ));
        assert!(Operation::Union.apply(&[songs()]).is_err());
    }

    #[test]
    fn empty_group_by_keys_rejected() {
        let op = Operation::GroupBy {
            pre_filter: None,
            keys: vec![],
            aggs: vec![],
        };
        assert!(op.apply(&[songs()]).is_err());
    }

    #[test]
    fn filter_to_empty_result() {
        let op = Operation::filter(Expr::col("year").gt(Expr::lit(9999i64)));
        let out = op.apply(&[songs()]).unwrap();
        assert_eq!(out.n_rows(), 0);
        assert_eq!(out.n_cols(), 3);
    }
}
