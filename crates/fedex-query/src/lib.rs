//! # fedex-query
//!
//! EDA operations for the FEDEX explainability framework (VLDB 2022):
//! filter, group-by (+ aggregates), inner join, and union — the four
//! exploratory operations of §3.1 — plus:
//!
//! * an expression AST ([`Expr`]) for filter predicates;
//! * [`ExploratoryStep`]: the triple `Q = (D_in, q, d_out)` of the paper,
//!   with the ability to *re-run* the operation on an input with a
//!   set-of-rows removed (the intervention of Def. 3.3);
//! * a parser for the SQL subset used by the paper's query workload
//!   (Tables 2–3), including nested `FROM [subquery]` steps.

pub mod error;
pub mod expr;
pub mod ops;
pub mod parser;
pub mod step;

pub use error::QueryError;
pub use expr::{BinOp, Expr};
pub use ops::{AggFunc, Aggregate, Operation, Provenance};
pub use parser::{parse_query, Catalog, ParsedQuery};
pub use step::ExploratoryStep;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
