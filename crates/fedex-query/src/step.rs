//! The exploratory step `Q = (D_in, q, d_out)` (§3.1) and the intervention
//! re-run needed by the contribution measure (Def. 3.3).

use fedex_frame::DataFrame;

use crate::ops::{Operation, Provenance};
use crate::Result;

/// A fully-evaluated exploratory step: the input dataframes, the operation,
/// and the resulting output dataframe.
#[derive(Debug, Clone)]
pub struct ExploratoryStep {
    /// Input dataframes `D_in` (one for filter/group-by, two for join,
    /// two or more for union).
    pub inputs: Vec<DataFrame>,
    /// The operation `q`.
    pub op: Operation,
    /// The output dataframe `d_out = q(D_in)`.
    pub output: DataFrame,
    /// Row provenance of the application (which input rows produced which
    /// output rows). Enables incremental intervention computation.
    pub provenance: Provenance,
}

impl ExploratoryStep {
    /// Apply `op` to `inputs`, materializing the output.
    pub fn run(inputs: Vec<DataFrame>, op: Operation) -> Result<Self> {
        let (output, provenance) = op.apply_traced(&inputs)?;
        Ok(ExploratoryStep {
            inputs,
            op,
            output,
            provenance,
        })
    }

    /// The input dataframe at `idx`.
    pub fn input(&self, idx: usize) -> &DataFrame {
        &self.inputs[idx]
    }

    /// Re-run the operation with the rows `excluded` removed from input
    /// `input_idx` — the intervention `q(D_in − R)` of Def. 3.3. Other
    /// inputs are untouched.
    pub fn rerun_without(&self, input_idx: usize, excluded: &[usize]) -> Result<DataFrame> {
        let keep = self.inputs[input_idx].complement_indices(excluded);
        let reduced = self.inputs[input_idx].take(&keep)?;
        let mut inputs: Vec<DataFrame> = Vec::with_capacity(self.inputs.len());
        for (i, df) in self.inputs.iter().enumerate() {
            if i == input_idx {
                inputs.push(reduced.clone());
            } else {
                inputs.push(df.clone());
            }
        }
        self.op.apply(&inputs)
    }

    /// For an output column `A`, the input dataframe that sources it and
    /// the column's name there, per the interestingness definitions of
    /// §3.2:
    ///
    /// * filter/union: the column exists in the input(s) under the same
    ///   name (union returns input 0; the caller iterates all inputs for
    ///   the max as the paper specifies);
    /// * join: output columns are prefixed, so `products_item` maps to
    ///   column `item` of the `products` input;
    /// * group-by: key columns map to themselves; aggregate columns
    ///   (`mean_loudness`) map to their source column (`loudness`).
    ///
    /// Returns `None` when the column has no input counterpart (e.g. a bare
    /// `count` aggregate).
    pub fn source_of_output_column(&self, col: &str) -> Option<(usize, String)> {
        match &self.op {
            Operation::Filter { .. } | Operation::Union => {
                if self.inputs[0].has_column(col) {
                    Some((0, col.to_string()))
                } else {
                    None
                }
            }
            Operation::Join {
                left_prefix,
                right_prefix,
                ..
            } => {
                let lp = format!("{left_prefix}_");
                let rp = format!("{right_prefix}_");
                if let Some(stripped) = col.strip_prefix(&lp) {
                    if self.inputs[0].has_column(stripped) {
                        return Some((0, stripped.to_string()));
                    }
                }
                if let Some(stripped) = col.strip_prefix(&rp) {
                    if self.inputs[1].has_column(stripped) {
                        return Some((1, stripped.to_string()));
                    }
                }
                None
            }
            Operation::GroupBy { keys, aggs, .. } => {
                if keys.iter().any(|k| k == col) {
                    return Some((0, col.to_string()));
                }
                for a in aggs {
                    if a.output_name() == col {
                        return a.source_column().map(|c| (0, c.to_string()));
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::Aggregate;
    use fedex_frame::{Column, Value};

    fn songs() -> DataFrame {
        DataFrame::new(vec![
            Column::from_ints("year", vec![1991, 1991, 2014, 2014, 2013]),
            Column::from_floats("loudness", vec![-11.0, -11.2, -7.8, -8.0, -8.2]),
            Column::from_strs("decade", vec!["1990s", "1990s", "2010s", "2010s", "2010s"]),
        ])
        .unwrap()
    }

    #[test]
    fn run_materializes_output() {
        let step = ExploratoryStep::run(
            vec![songs()],
            Operation::filter(Expr::col("year").gt(Expr::lit(2000i64))),
        )
        .unwrap();
        assert_eq!(step.output.n_rows(), 3);
        assert_eq!(step.inputs[0].n_rows(), 5);
    }

    #[test]
    fn rerun_without_removes_rows() {
        let step = ExploratoryStep::run(
            vec![songs()],
            Operation::filter(Expr::col("year").gt(Expr::lit(2000i64))),
        )
        .unwrap();
        // Remove the two 2014 rows (indices 2, 3) from the input.
        let out = step.rerun_without(0, &[2, 3]).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.get(0, "year").unwrap(), Value::Int(2013));
        // Original step untouched.
        assert_eq!(step.output.n_rows(), 3);
    }

    #[test]
    fn rerun_without_empty_exclusion_is_identity() {
        let step = ExploratoryStep::run(
            vec![songs()],
            Operation::group_by(vec!["year"], vec![Aggregate::mean("loudness")]),
        )
        .unwrap();
        let out = step.rerun_without(0, &[]).unwrap();
        assert_eq!(out.n_rows(), step.output.n_rows());
    }

    #[test]
    fn source_mapping_filter() {
        let step = ExploratoryStep::run(
            vec![songs()],
            Operation::filter(Expr::col("year").gt(Expr::lit(0i64))),
        )
        .unwrap();
        assert_eq!(
            step.source_of_output_column("decade"),
            Some((0, "decade".into()))
        );
        assert_eq!(step.source_of_output_column("nope"), None);
    }

    #[test]
    fn source_mapping_group_by() {
        let step = ExploratoryStep::run(
            vec![songs()],
            Operation::group_by(
                vec!["year"],
                vec![Aggregate::mean("loudness"), Aggregate::count(None)],
            ),
        )
        .unwrap();
        assert_eq!(
            step.source_of_output_column("year"),
            Some((0, "year".into()))
        );
        assert_eq!(
            step.source_of_output_column("mean_loudness"),
            Some((0, "loudness".into()))
        );
        assert_eq!(step.source_of_output_column("count"), None);
    }

    #[test]
    fn source_mapping_join() {
        let products = DataFrame::new(vec![
            Column::from_ints("item", vec![1, 2]),
            Column::from_strs("name", vec!["cola", "juice"]),
        ])
        .unwrap();
        let sales = DataFrame::new(vec![
            Column::from_ints("item", vec![1, 2]),
            Column::from_floats("total", vec![5.0, 6.0]),
        ])
        .unwrap();
        let step = ExploratoryStep::run(
            vec![products, sales],
            Operation::join("item", "item", "products", "sales"),
        )
        .unwrap();
        assert_eq!(
            step.source_of_output_column("products_name"),
            Some((0, "name".into()))
        );
        assert_eq!(
            step.source_of_output_column("sales_total"),
            Some((1, "total".into()))
        );
        assert_eq!(step.source_of_output_column("unrelated"), None);
    }

    #[test]
    fn rerun_join_side() {
        let products = DataFrame::new(vec![Column::from_ints("item", vec![1, 2, 3])]).unwrap();
        let sales = DataFrame::new(vec![Column::from_ints("item", vec![1, 2, 3, 3])]).unwrap();
        let step = ExploratoryStep::run(
            vec![products, sales],
            Operation::join("item", "item", "p", "s"),
        )
        .unwrap();
        assert_eq!(step.output.n_rows(), 4);
        // Remove product 3 → its two sales rows disappear.
        let out = step.rerun_without(0, &[2]).unwrap();
        assert_eq!(out.n_rows(), 2);
        // Removing from the sales side instead.
        let out = step.rerun_without(1, &[0]).unwrap();
        assert_eq!(out.n_rows(), 3);
    }
}
