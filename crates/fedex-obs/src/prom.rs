//! Prometheus text exposition (format version 0.0.4): a small writer
//! used by the server's `GET /metrics` handler, and a validating parser
//! used by CI's `promcheck` to gate the exposition's syntax and
//! histogram consistency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{bucket_upper, HistSnapshot, NUM_BUCKETS, SUB_BUCKETS};

/// Builder for a Prometheus text-format exposition.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            _ => s.push(c),
        }
    }
    s
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Format a float the way Prometheus expects (plain decimal; `+Inf`
/// handled by callers).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Emit `# HELP` and `# TYPE` comments for a metric family.
    /// `kind` is `counter`, `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            fmt_labels(labels),
            fmt_value(value)
        );
    }

    /// Emit the `_bucket`/`_sum`/`_count` series of one histogram whose
    /// observations were recorded in microseconds; `le` bounds and
    /// `_sum` are converted to seconds. To keep the exposition compact,
    /// cumulative buckets are emitted only at octave boundaries of the
    /// underlying log-linear scheme (plus `+Inf`), which preserves the
    /// ≤12.5% quantile error at scrape granularity of one octave.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let mut cum = 0u64;
        for idx in 0..NUM_BUCKETS {
            cum += snap.counts[idx];
            let octave_top = idx >= SUB_BUCKETS && idx % SUB_BUCKETS == SUB_BUCKETS - 1;
            let small = idx == 1 || idx == 3 || idx == SUB_BUCKETS - 1;
            if !(octave_top || small) {
                continue;
            }
            let le = bucket_upper(idx) as f64 / 1e6;
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            let le_s = format!("{le}");
            ls.push(("le", le_s.as_str()));
            self.sample(&format!("{name}_bucket"), &ls, cum as f64);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &ls, snap.count as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum as f64 / 1e6);
        self.sample(&format!("{name}_count"), labels, snap.count as f64);
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` parses to [`f64::INFINITY`]).
    pub value: f64,
}

/// Summary of a validated exposition.
#[derive(Debug, Default)]
pub struct Exposition {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// Metric families declared via `# TYPE`, name → kind.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// Sum of all samples of `name` (across label sets). `None` when
    /// the metric is absent.
    pub fn sum(&self, name: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut seen = false;
        for s in &self.samples {
            if s.name == name {
                total += s.value;
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// Value of the single sample of `name` with a matching label, if
    /// present.
    pub fn value_with(&self, name: &str, label: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == label && v == value))
            .map(|s| s.value)
    }

    /// Distinct values of `label` across all samples of `name`.
    pub fn label_values(&self, name: &str, label: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.samples.iter().filter(|s| s.name == name) {
            for (k, v) in &s.labels {
                if k == label && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = rest[..eq].trim().to_string();
        if !valid_name(&name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => value.push(other),
                    None => return Err(format!("line {line_no}: dangling escape")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name, value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

fn parse_value(s: &str, line_no: usize) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: bad value {other:?}")),
    }
}

/// Parse and validate a Prometheus text exposition. Checks line syntax
/// (names, quoting, numeric values), that `# TYPE` precedes its samples,
/// and histogram consistency: bucket counts non-decreasing in `le`, a
/// `+Inf` bucket present per series, and `+Inf == _count`.
pub fn validate_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {line_no}: bad TYPE name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: bad TYPE kind {kind:?}"));
                }
                exp.types.insert(name.to_string(), kind.to_string());
            } else if !comment.starts_with("HELP ") && !comment.is_empty() {
                // Other comments are legal and ignored.
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(b) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unbalanced '{{'"))?;
                (&line[..b], {
                    let labels = parse_labels(&line[b + 1..close], line_no)?;
                    let tail = line[close + 1..].trim();
                    (labels, tail)
                })
            }
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                (&line[..sp], (Vec::new(), line[sp..].trim()))
            }
        };
        let (labels, tail) = rest;
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let mut fields = tail.split_whitespace();
        let value_s = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let value = parse_value(value_s, line_no)?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {line_no}: bad timestamp {ts:?}"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {line_no}: trailing junk"));
        }
        // Typed families must be declared before use (our writer always
        // does; enforce for the base name of histogram suffixes too).
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf))
            .filter(|base| exp.types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !exp.types.contains_key(base) {
            return Err(format!("line {line_no}: sample {name:?} has no # TYPE"));
        }
        exp.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    validate_histograms(&exp)?;
    Ok(exp)
}

/// Key identifying one histogram series: non-`le` labels, serialized.
fn series_key(s: &Sample) -> String {
    let mut parts: Vec<String> = s
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    parts.sort();
    parts.join(",")
}

fn validate_histograms(exp: &Exposition) -> Result<(), String> {
    for (family, kind) in &exp.types {
        if kind != "histogram" {
            continue;
        }
        // series key -> (ordered bucket values, has_inf, inf value)
        let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for s in &exp.samples {
            if s.name == format!("{family}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("{family}: bucket without le label"))?;
                let le = parse_value(le, 0).map_err(|e| format!("{family}: {e}"))?;
                buckets
                    .entry(series_key(s))
                    .or_default()
                    .push((le, s.value));
            } else if s.name == format!("{family}_count") {
                counts.insert(series_key(s), s.value);
            }
        }
        if buckets.is_empty() {
            return Err(format!("{family}: histogram with no _bucket samples"));
        }
        for (key, series) in &buckets {
            let mut prev = -1.0f64;
            let mut prev_count = -1.0f64;
            for &(le, v) in series {
                if le.is_finite() {
                    if le <= prev {
                        return Err(format!("{family}{{{key}}}: le bounds not increasing"));
                    }
                    prev = le;
                }
                if v < prev_count {
                    return Err(format!("{family}{{{key}}}: bucket counts decreasing"));
                }
                prev_count = v;
            }
            let inf = series
                .iter()
                .find(|(le, _)| le.is_infinite())
                .map(|&(_, v)| v)
                .ok_or_else(|| format!("{family}{{{key}}}: missing +Inf bucket"))?;
            let count = counts
                .get(key)
                .ok_or_else(|| format!("{family}{{{key}}}: missing _count"))?;
            if (inf - count).abs() > 0.0 {
                return Err(format!(
                    "{family}{{{key}}}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn writer_output_validates() {
        let h = Histogram::new();
        for v in [3u64, 12, 700, 15_000, 2_000_000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.header("fedex_requests_total", "counter", "Total requests.");
        w.sample("fedex_requests_total", &[], 5.0);
        w.header("fedex_request_duration_seconds", "histogram", "Latency.");
        w.histogram(
            "fedex_request_duration_seconds",
            &[("cmd", "explain")],
            &h.snapshot(),
        );
        let text = w.finish();
        let exp = validate_exposition(&text).expect("valid exposition");
        assert_eq!(exp.sum("fedex_requests_total"), Some(5.0));
        assert_eq!(exp.sum("fedex_request_duration_seconds_count"), Some(5.0));
    }

    #[test]
    fn validator_rejects_torn_histograms() {
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).unwrap_err().contains("decreasing"));
        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(missing_inf)
            .unwrap_err()
            .contains("+Inf"));
    }

    #[test]
    fn validator_rejects_untyped_and_junk() {
        assert!(validate_exposition("nope 1\n").is_err());
        let bad_value = "# TYPE g gauge\ng one\n";
        assert!(validate_exposition(bad_value).is_err());
        let bad_label = "# TYPE g gauge\ng{x=unquoted} 1\n";
        assert!(validate_exposition(bad_label).is_err());
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut w = PromWriter::new();
        w.header("g", "gauge", "g");
        w.sample("g", &[("path", "a\"b\\c\nd")], 1.0);
        let exp = validate_exposition(&w.finish()).expect("valid");
        assert_eq!(exp.samples[0].labels[0].1, "a\"b\\c\nd");
    }
}
