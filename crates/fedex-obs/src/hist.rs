//! Lock-free log-linear latency histograms.
//!
//! Values are recorded in **microseconds** into a fixed set of
//! [`NUM_BUCKETS`] buckets: the first [`SUB_BUCKETS`] buckets are exact
//! (one per value `0..8`), after which each power-of-two octave is split
//! into [`SUB_BUCKETS`] linear sub-buckets. The sub-bucket width within
//! octave `e` is `2^(e-3)`, so any reported quantile overestimates the
//! true value by at most a factor of `1 + 1/8` (12.5%) — see
//! [`HistSnapshot::quantile`]. Recording is a single relaxed
//! `fetch_add` plus three bookkeeping atomics; there are no locks
//! anywhere on the write path, so histograms can be shared freely across
//! worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (and count of exact
/// single-value buckets at the front).
pub const SUB_BUCKETS: usize = 8;

/// Total bucket count. Buckets `0..8` hold exact values `0..8` µs; the
/// remaining 31 octaves of 8 sub-buckets reach past `2^34` µs (~4.7 h),
/// beyond which values clamp into the last bucket.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * 32;

/// Bucket index for a value in microseconds.
#[inline]
pub fn bucket_index(micros: u64) -> usize {
    if micros < SUB_BUCKETS as u64 {
        return micros as usize;
    }
    let e = 63 - micros.leading_zeros() as usize; // e >= 3
    let sub = ((micros >> (e - 3)) & 0x7) as usize;
    let idx = (e - 2) * SUB_BUCKETS + sub;
    idx.min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound (µs) of a bucket; the value returned by
/// quantile queries that land in this bucket.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let e = idx / SUB_BUCKETS + 2;
    let sub = (idx % SUB_BUCKETS) as u64;
    (1u64 << e) + (sub + 1) * (1u64 << (e - 3)) - 1
}

/// Inclusive lower bound (µs) of a bucket.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let e = idx / SUB_BUCKETS + 2;
    let sub = (idx % SUB_BUCKETS) as u64;
    (1u64 << e) + sub * (1u64 << (e - 3))
}

/// A concurrent latency histogram (microsecond resolution).
///
/// All mutation happens through `&self` with relaxed atomics; read a
/// coherent-enough view with [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array from a vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; NUM_BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .expect("NUM_BUCKETS-sized vec");
        Histogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation, in microseconds.
    #[inline]
    pub fn record(&self, micros: u64) {
        self.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Record one observation from a [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture a point-in-time copy of the bucket counts. Concurrent
    /// writers may land between bucket reads, so `snapshot.count` is
    /// recomputed from the copied buckets to stay internally consistent.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut total = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            counts[i] = v;
            total += v;
        }
        HistSnapshot {
            counts,
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (length [`NUM_BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total observations (sum of `counts`).
    pub count: u64,
    /// Sum of all observed values, µs.
    pub sum: u64,
    /// Largest observed value, µs (exact, not bucketed).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// The value (µs) at quantile `q` in `[0, 1]`: the inclusive upper
    /// bound of the bucket containing the `ceil(q * count)`-th smallest
    /// observation. Overestimates the exact rank value by at most
    /// `1/SUB_BUCKETS` (12.5%). Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Never report past the true maximum.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (µs).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (µs).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (µs).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one (bucket-wise addition; the
    /// operation is associative and commutative, so shard snapshots can
    /// be merged in any order).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        for idx in 0..NUM_BUCKETS {
            assert!(bucket_lower(idx) <= bucket_upper(idx), "bucket {idx}");
            if idx + 1 < NUM_BUCKETS {
                assert_eq!(bucket_upper(idx) + 1, bucket_lower(idx + 1));
            }
        }
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, 1 << 33] {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx), "v={v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 28);
        assert_eq!(s.max, 7);
        assert_eq!(s.quantile(1.0), 7);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in (8u64..1 << 22).step_by(977) {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!(
                (upper - v) as f64 <= v as f64 / SUB_BUCKETS as f64,
                "v={v} upper={upper}"
            );
        }
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().count, 1);
    }
}
