//! Always-on flight recorder: a bounded ring buffer of recent request
//! events.
//!
//! Writers claim a monotonically increasing sequence number with one
//! relaxed `fetch_add` and then write `slots[seq % capacity]` under that
//! slot's own lock, so concurrent writers only contend when they hash to
//! the same slot. An event is only overwritten by a *newer* sequence
//! number, which keeps the dump invariant simple even when two laps race
//! on the same slot: after `n >= capacity` total events, a dump holds
//! exactly `capacity` events, all from the final lap
//! (`seq >= n - capacity`), in strictly increasing sequence order.
//!
//! Readers ([`FlightRecorder::dump`]) take each slot's read lock
//! briefly; they never block the `fetch_add` fast path and hold no
//! global lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};
use std::time::Instant;

/// One recorded request event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (0-based, dense across all events ever
    /// recorded, including those since evicted from the ring).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_micros: u64,
    /// Trace id of the request this event belongs to (0 = none).
    pub trace_id: u64,
    /// Event kind: `admit`, `dispatch`, `stage`, `finish`, `error`,
    /// `reject`, `coalesce`, or `expired`.
    pub kind: &'static str,
    /// Wire command (`explain`, `register`, ...).
    pub cmd: String,
    /// Session the request addressed (may be empty).
    pub session: String,
    /// Kind-specific detail: stage name, reject code, queue class, ...
    pub detail: String,
    /// Incident id (`inc-…`) for `error` events; empty otherwise.
    pub incident: String,
    /// Duration in microseconds where meaningful (stage/finish/error
    /// events), else 0.
    pub micros: u64,
}

/// Bounded lock-light ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[RwLock<Option<Event>>]>,
    head: AtomicU64,
    epoch: Instant,
}

/// Default ring capacity: enough for several thousand requests' worth of
/// admit/dispatch/stage/finish events.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.max(1);
        let slots: Vec<RwLock<Option<Event>>> = (0..n).map(|_| RwLock::new(None)).collect();
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Microseconds elapsed since the recorder epoch (the timebase of
    /// [`Event::at_micros`]).
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Record one event. `seq` and `at_micros` in `ev` are overwritten
    /// by the recorder; callers fill the rest.
    pub fn record(&self, mut ev: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        ev.at_micros = self.now_micros();
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // `into_inner` on poison: recording must survive panicking
        // request handlers elsewhere in the process.
        let mut guard = slot.write().unwrap_or_else(PoisonError::into_inner);
        let stale = guard.as_ref().is_none_or(|old| old.seq < seq);
        if stale {
            *guard = Some(ev);
        }
    }

    /// Convenience constructor + record.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &self,
        trace_id: u64,
        kind: &'static str,
        cmd: &str,
        session: &str,
        detail: &str,
        incident: &str,
        micros: u64,
    ) {
        self.record(Event {
            seq: 0,
            at_micros: 0,
            trace_id,
            kind,
            cmd: cmd.to_string(),
            session: session.to_string(),
            detail: detail.to_string(),
            incident: incident.to_string(),
            micros,
        });
    }

    /// All events currently in the ring, in increasing sequence order.
    pub fn dump(&self) -> Vec<Event> {
        let mut out: Vec<Event> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let guard = slot.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(ev) = guard.as_ref() {
                out.push(ev.clone());
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events whose trace id matches `trace_id`, oldest first.
    pub fn events_for_trace(&self, trace_id: u64) -> Vec<Event> {
        let mut out = self.dump();
        out.retain(|e| e.trace_id == trace_id);
        out
    }

    /// The full timeline of the request that produced `incident`: looks
    /// up the error event carrying the incident id, then returns every
    /// ring event sharing its trace id (or just the error event itself
    /// when it has no trace id). Empty if the incident has been evicted.
    pub fn events_for_incident(&self, incident: &str) -> Vec<Event> {
        let all = self.dump();
        let Some(hit) = all.iter().find(|e| e.incident == incident) else {
            return Vec::new();
        };
        if hit.trace_id == 0 {
            return vec![hit.clone()];
        }
        let tid = hit.trace_id;
        all.into_iter().filter(|e| e.trace_id == tid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, kind: &'static str) -> Event {
        Event {
            seq: 0,
            at_micros: 0,
            trace_id: trace,
            kind,
            cmd: "explain".into(),
            session: "s".into(),
            detail: String::new(),
            incident: String::new(),
            micros: 0,
        }
    }

    #[test]
    fn dump_is_ordered_and_bounded() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20 {
            r.record(ev(i, "admit"));
        }
        let d = r.dump();
        assert_eq!(d.len(), 8);
        assert!(d.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(d.iter().all(|e| e.seq >= 12), "only the last lap remains");
        assert_eq!(r.recorded(), 20);
    }

    #[test]
    fn incident_lookup_returns_the_whole_trace() {
        let r = FlightRecorder::with_capacity(32);
        r.push(7, "admit", "explain", "s", "heavy", "", 0);
        r.push(8, "admit", "explain", "s", "heavy", "", 0);
        r.push(7, "dispatch", "explain", "s", "", "", 0);
        r.push(7, "error", "explain", "s", "panic", "inc-00000001", 123);
        let tl = r.events_for_incident("inc-00000001");
        assert_eq!(tl.len(), 3);
        assert!(tl.iter().all(|e| e.trace_id == 7));
        assert!(r.events_for_incident("inc-ffffffff").is_empty());
    }
}
