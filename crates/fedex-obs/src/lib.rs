//! Observability primitives for the FEDEX serving stack.
//!
//! This crate is dependency-free and std-only. It provides:
//!
//! * [`Histogram`] — lock-free log-linear latency histograms
//!   (microsecond resolution, ≤12.5% quantile error, mergeable
//!   [`HistSnapshot`]s);
//! * [`Obs`] — the per-process hub: one histogram per wire command,
//!   per queue class (admission wait and service time), and per
//!   pipeline stage, plus the flight recorder and trace-id minting;
//! * [`FlightRecorder`] — an always-on bounded ring of recent request
//!   events, dumpable after the fact to explain an `inc-…` incident id;
//! * [`prom`] — Prometheus text exposition writer and a validating
//!   parser (used by CI's `promcheck`).
//!
//! The serving layer (`fedex-serve`) owns all recording call sites;
//! `fedex-core` stays independent of this crate and surfaces its
//! per-stage timings and cache hit/miss through `StageReport`.

#![deny(missing_docs)]

pub mod hist;
pub mod prom;
pub mod recorder;

pub use hist::{HistSnapshot, Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use prom::{validate_exposition, Exposition, PromWriter, Sample};
pub use recorder::{Event, FlightRecorder, DEFAULT_RECORDER_CAPACITY};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The wire commands that get their own latency series. Unknown or
/// malformed commands fold into `other`.
pub const WIRE_COMMANDS: &[&str] = &[
    "ping",
    "register",
    "register_demo",
    "explain",
    "history",
    "sessions",
    "metrics",
    "debug_dump",
    "shutdown",
    "other",
];

/// Pipeline stage names, in execution order (must match the
/// `StageReport::stage` labels produced by the core pipeline).
pub const STAGES: &[&str] = &[
    "ScoreColumns",
    "PartitionRows",
    "Contribute",
    "Skyline",
    "Present",
];

/// Scheduler queue classes.
pub const CLASSES: &[&str] = &["control", "heavy"];

/// Index of `cmd` in [`WIRE_COMMANDS`] (`other` when unknown).
pub fn command_index(cmd: &str) -> usize {
    WIRE_COMMANDS
        .iter()
        .position(|&c| c == cmd)
        .unwrap_or(WIRE_COMMANDS.len() - 1)
}

/// Render a trace id the way it appears on the wire (`t-` + 16 hex
/// digits).
pub fn trace_id_str(id: u64) -> String {
    format!("t-{id:016x}")
}

/// Parse a wire-format trace id (`t-…`) back to its numeric form.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("t-")?, 16).ok()
}

/// Request-scoped trace context: a process-unique id plus the span
/// clock it was minted on. Threaded from admission through the
/// scheduler into the pipeline so every event and span of one request
/// shares an id.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    /// Process-unique trace id (never 0).
    pub id: u64,
    /// When the request entered the system (admission time).
    pub started: Instant,
}

impl TraceCtx {
    /// Microseconds elapsed since admission.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// The per-process observability hub. Cheap to share (`Arc<Obs>`); all
/// recording methods take `&self` and are lock-free except the flight
/// recorder's per-slot lock.
#[derive(Debug)]
pub struct Obs {
    commands: Vec<Histogram>,
    admission_wait: Vec<Histogram>,
    service_time: Vec<Histogram>,
    stages: Vec<Histogram>,
    recorder: FlightRecorder,
    next_trace: AtomicU64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A hub with the default flight-recorder capacity.
    pub fn new() -> Self {
        Obs::with_recorder_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A hub whose flight recorder holds `capacity` events.
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        Obs {
            commands: WIRE_COMMANDS.iter().map(|_| Histogram::new()).collect(),
            admission_wait: CLASSES.iter().map(|_| Histogram::new()).collect(),
            service_time: CLASSES.iter().map(|_| Histogram::new()).collect(),
            stages: STAGES.iter().map(|_| Histogram::new()).collect(),
            recorder: FlightRecorder::with_capacity(capacity),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Mint a fresh request trace context (ids are dense and never 0).
    pub fn mint_trace(&self) -> TraceCtx {
        TraceCtx {
            id: self.next_trace.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
        }
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Record one wire command's end-to-end handling time.
    pub fn record_command(&self, cmd: &str, d: Duration) {
        self.commands[command_index(cmd)].record_duration(d);
    }

    /// Record time spent queued before dispatch, per class.
    pub fn record_admission_wait(&self, heavy: bool, d: Duration) {
        self.admission_wait[heavy as usize].record_duration(d);
    }

    /// Record time spent executing after dispatch, per class.
    pub fn record_service_time(&self, heavy: bool, d: Duration) {
        self.service_time[heavy as usize].record_duration(d);
    }

    /// Record one pipeline stage duration (`stage` must be one of
    /// [`STAGES`]; unknown stages are ignored).
    pub fn record_stage(&self, stage: &str, d: Duration) {
        if let Some(i) = STAGES.iter().position(|&s| s == stage) {
            self.stages[i].record_duration(d);
        }
    }

    /// Snapshot every per-command histogram, labelled.
    pub fn command_snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        WIRE_COMMANDS
            .iter()
            .zip(self.commands.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .collect()
    }

    /// Snapshot the admission-wait histograms, labelled by class.
    pub fn admission_wait_snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        CLASSES
            .iter()
            .zip(self.admission_wait.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .collect()
    }

    /// Snapshot the service-time histograms, labelled by class.
    pub fn service_time_snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        CLASSES
            .iter()
            .zip(self.service_time.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .collect()
    }

    /// Snapshot the per-stage histograms, labelled by stage name.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        STAGES
            .iter()
            .zip(self.stages.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .collect()
    }

    /// Sum of every per-command histogram count — by construction equal
    /// to the number of requests the service has counted (each counted
    /// request records exactly one command observation).
    pub fn total_command_observations(&self) -> u64 {
        self.commands.iter().map(|h| h.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_dense_and_round_trip() {
        let obs = Obs::new();
        let a = obs.mint_trace();
        let b = obs.mint_trace();
        assert_eq!(b.id, a.id + 1);
        assert_ne!(a.id, 0);
        assert_eq!(parse_trace_id(&trace_id_str(a.id)), Some(a.id));
        assert_eq!(parse_trace_id("bogus"), None);
    }

    #[test]
    fn unknown_commands_fold_into_other() {
        let obs = Obs::new();
        obs.record_command("frobnicate", Duration::from_micros(5));
        obs.record_command("ping", Duration::from_micros(5));
        let snaps = obs.command_snapshots();
        assert_eq!(
            snaps.iter().find(|(n, _)| *n == "other").unwrap().1.count,
            1
        );
        assert_eq!(snaps.iter().find(|(n, _)| *n == "ping").unwrap().1.count, 1);
        assert_eq!(obs.total_command_observations(), 2);
    }

    #[test]
    fn stage_names_cover_the_pipeline() {
        let obs = Obs::new();
        for s in STAGES {
            obs.record_stage(s, Duration::from_micros(10));
        }
        obs.record_stage("NotAStage", Duration::from_micros(10));
        let total: u64 = obs.stage_snapshots().iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, STAGES.len() as u64);
    }
}
