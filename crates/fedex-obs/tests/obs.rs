//! Property and concurrency tests for the observability primitives:
//! histogram quantiles against an exact reference, merge associativity,
//! and flight-recorder wraparound under concurrent writers.

use std::sync::Arc;
use std::thread;

use fedex_obs::hist::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS};
use fedex_obs::{Event, FlightRecorder, HistSnapshot, Histogram};
use proptest::prelude::*;

/// Exact quantile of a sorted sample, matching the histogram's rank
/// convention (`ceil(q * n)`-th smallest, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_bucket_error(
        values in proptest::collection::vec(0u64..5_000_000, 1..400),
        qs in proptest::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &qs {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            // The estimate is the bucket's inclusive upper bound (capped
            // at the true max): never below the exact value, and at most
            // 1/8 above it.
            prop_assert!(est >= exact, "q={} est={} exact={}", q, est, exact);
            prop_assert!(
                est <= exact + exact / 8 + 1,
                "q={} est={} exact={}", q, est, exact
            );
        }
        prop_assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..2_000_000, 0..120),
        b in proptest::collection::vec(0u64..2_000_000, 0..120),
        c in proptest::collection::vec(0u64..2_000_000, 0..120),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snap(&all));
    }

    #[test]
    fn bucket_bounds_bracket_every_value(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        prop_assert!(bucket_lower(idx) <= v);
        if idx < NUM_BUCKETS - 1 {
            prop_assert!(v <= bucket_upper(idx));
        }
    }
}

#[test]
fn recorder_wraparound_under_concurrent_writers() {
    const CAP: usize = 64;
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    let rec = Arc::new(FlightRecorder::with_capacity(CAP));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    rec.record(Event {
                        seq: 0,
                        at_micros: 0,
                        trace_id: t * PER_THREAD + i,
                        kind: "admit",
                        cmd: "explain".into(),
                        session: format!("s{t}"),
                        detail: String::new(),
                        incident: String::new(),
                        micros: 0,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS * PER_THREAD;
    assert_eq!(rec.recorded(), total);
    let dump = rec.dump();
    // Ring is full: exactly `CAP` events survive, each slot holding the
    // newest sequence number that mapped to it — all from the last lap.
    assert_eq!(dump.len(), CAP);
    assert!(
        dump.windows(2).all(|w| w[0].seq < w[1].seq),
        "dump must be strictly ordered by seq"
    );
    for ev in &dump {
        assert!(
            ev.seq >= total - CAP as u64 && ev.seq < total,
            "seq {} outside final lap",
            ev.seq
        );
    }
    // All slots distinct residues.
    let mut residues: Vec<u64> = dump.iter().map(|e| e.seq % CAP as u64).collect();
    residues.sort_unstable();
    residues.dedup();
    assert_eq!(residues.len(), CAP);
}

#[test]
fn concurrent_histogram_recording_loses_nothing() {
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000 + (i % 977));
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 40_000);
    assert_eq!(snap.counts.iter().sum::<u64>(), 40_000);
}

#[test]
fn snapshot_merge_matches_single_histogram() {
    let parts: Vec<HistSnapshot> = (0..4)
        .map(|t| {
            let h = Histogram::new();
            for i in 0..100u64 {
                h.record(t * 37 + i * 13);
            }
            h.snapshot()
        })
        .collect();
    let whole = {
        let h = Histogram::new();
        for t in 0..4u64 {
            for i in 0..100u64 {
                h.record(t * 37 + i * 13);
            }
        }
        h.snapshot()
    };
    let mut merged = HistSnapshot::default();
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged, whole);
}
