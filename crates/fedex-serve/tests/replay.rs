//! Differential trace replay against this crate's server: the same
//! seed, compiled to the same trace, replayed twice against two fresh
//! servers, must produce **byte-identical** non-degraded explain
//! payloads — and each run must pass the frontier gate (typed failures
//! only, DKW bounds on every degraded answer, conserved Prometheus
//! counters, all four provenance kinds answered).
//!
//! This is the machine-checkable form of the determinism claim the
//! goldens make for single queries, extended to full multi-client
//! workloads over the wire.

use fedex_bench::workload::{
    differential_violations, frontier_violations, replay, report_json, BaseDataset, ClientBehavior,
    DatasetSpec, DatasetStep, QueryMix, ReplayConfig, WorkloadSpec,
};
use fedex_serve::Json;

/// A small four-kind workload: every provenance kind, a derived inline
/// table, two clients — sized for a debug-profile CI run.
fn small_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "replay-test".into(),
        seed,
        datasets: vec![
            DatasetSpec {
                table: "spotify".into(),
                base: BaseDataset::Spotify,
                rows: 300,
                product_rows: None,
                steps: vec![],
            },
            DatasetSpec {
                table: "products".into(),
                base: BaseDataset::Products,
                rows: 80,
                product_rows: None,
                steps: vec![],
            },
            DatasetSpec {
                table: "sales".into(),
                base: BaseDataset::Sales,
                rows: 500,
                product_rows: Some(80),
                steps: vec![],
            },
            DatasetSpec {
                table: "spotify_cut".into(),
                base: BaseDataset::Spotify,
                rows: 300,
                product_rows: None,
                steps: vec![
                    DatasetStep::Sample { keep_pct: 80 },
                    DatasetStep::FilterGt {
                        column: "popularity".into(),
                        min: 20.0,
                    },
                    DatasetStep::Mutate {
                        column: "tempo_norm".into(),
                        source: "tempo".into(),
                        scale: 0.01,
                        offset: 0.0,
                    },
                    DatasetStep::Chunk { index: 0, of: 2 },
                ],
            },
        ],
        mix: QueryMix {
            filter: 3,
            group_by: 2,
            join: 1,
            union_: 1,
        },
        behavior: ClientBehavior {
            clients: 2,
            queries_per_client: 6,
            think_ms_min: 0,
            think_ms_max: 3,
            deadline_ms: Some(60_000),
            retries: 2,
            zipf_s: 0.7,
        },
    }
}

#[test]
fn same_seed_replays_are_response_identical() {
    let trace = small_spec(23).compile().expect("spec compiles");
    let cfg = ReplayConfig {
        addr: None,
        workers: 2,
        speed: 0.0, // no think-time sleeps in CI
    };

    let run1 = replay(&trace, &cfg).expect("first replay");
    let run2 = replay(&trace, &cfg).expect("second replay");

    let gate1 = frontier_violations(&run1, &trace);
    let gate2 = frontier_violations(&run2, &trace);
    assert!(gate1.is_empty(), "run 1 frontier gate: {gate1:?}");
    assert!(gate2.is_empty(), "run 2 frontier gate: {gate2:?}");

    // The determinism gate: every op both runs answered non-degraded
    // must carry an identical canonical payload.
    let diff = differential_violations(&run1, &run2);
    assert!(diff.is_empty(), "differential gate: {diff:?}");

    // Stronger, since both runs were healthy: every explain succeeded
    // and the payload comparison was exhaustive, byte for byte.
    assert_eq!(run1.results.len(), 12);
    assert_eq!(run2.results.len(), 12);
    for (a, b) in run1.results.iter().zip(&run2.results) {
        assert_eq!(a.id, b.id);
        assert!(a.ok, "op {} failed in run 1: {:?}", a.id, a.code);
        if !a.degraded && !b.degraded {
            assert_eq!(
                a.payload, b.payload,
                "op {} ({}) payload diverged between same-seed runs",
                a.id, a.kind
            );
        }
    }

    // All four provenance kinds produced a successful explain.
    for kind in ["filter", "group_by", "join", "union"] {
        assert!(
            run1.results.iter().any(|r| r.kind == kind && r.ok),
            "no successful {kind} explain"
        );
    }

    // The report artifact is well-formed and records the pass.
    let report = report_json(&trace, &run1, &gate1);
    assert_eq!(report.get("gate"), Some(&Json::Bool(true)));
    assert_eq!(
        report.get("explains").and_then(Json::as_usize),
        Some(12),
        "report explain count"
    );
    assert!(
        report
            .get("per_kind")
            .and_then(Json::as_arr)
            .is_some_and(|k| k.len() == 4),
        "report covers four kinds"
    );
}

#[test]
fn different_seeds_produce_different_traces_but_both_pass() {
    let a = small_spec(5).compile().unwrap();
    let b = small_spec(6).compile().unwrap();
    assert_ne!(a.to_ndjson(), b.to_ndjson(), "seeds must matter");

    // A different seed still replays clean — the gate is about
    // invariants, not one blessed seed.
    let cfg = ReplayConfig {
        addr: None,
        workers: 1,
        speed: 0.0,
    };
    let run = replay(&b, &cfg).expect("replay");
    let gate = frontier_violations(&run, &b);
    assert!(gate.is_empty(), "frontier gate: {gate:?}");
}
