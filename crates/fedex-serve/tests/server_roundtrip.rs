//! End-to-end tests over a real loopback socket: NDJSON round-trips, the
//! HTTP fallback, warm-cache behaviour, and the concurrency contract —
//! N clients hammering one server receive explanations byte-identical to
//! the serial CLI path.

use std::io::{Read, Write};
use std::sync::Arc;

use fedex_core::{render_all, ExecutionMode, Fedex, Session};
use fedex_serve::{json, Client, ExplainService, Json, Server, ServerConfig};

const ROWS: usize = 4_000;
const SEED: usize = 7;
const SQL: &str = "SELECT * FROM spotify WHERE popularity > 65";

fn boot(workers: usize) -> fedex_serve::ServerHandle {
    let service = Arc::new(ExplainService::default());
    let server = Server::bind(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            // Generous admission bounds: these tests exercise the wire
            // contract, not backpressure (tests/scheduler.rs does that).
            queue_depth: 64,
            session_quota: 8,
            max_connections: 64,
            ..Default::default()
        },
        service,
    )
    .expect("bind loopback");
    server.spawn().expect("spawn server")
}

fn req(text: &str) -> Json {
    json::parse(text).unwrap()
}

/// What the serial, in-process CLI path renders for the same step.
fn serial_reference() -> String {
    let mut session = Session::new(Fedex::new().with_execution(ExecutionMode::Serial));
    session.register("spotify", fedex_data::spotify::generate(ROWS, SEED as u64));
    let entry = session.run(SQL).unwrap();
    render_all(&entry.explanations, 44)
}

#[test]
fn register_explain_roundtrip_and_warm_cache() {
    let handle = boot(2);
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let r = client
        .request(&req(&format!(
            r#"{{"cmd":"register_demo","session":"s","rows":{ROWS},"seed":{SEED}}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");

    let explain = req(&format!(
        r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
    ));
    let cold = client.request(&explain).unwrap();
    assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "{cold:?}");
    let rendered = cold.get("rendered").and_then(Json::as_str).unwrap();
    assert_eq!(rendered, serial_reference(), "wire == serial CLI path");

    // Warm request: the artifact cache reports hits and encode collapses.
    let warm = client.request(&explain).unwrap();
    let hits = warm
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(hits > 0.0, "second request must hit the cache: {warm:?}");
    let cold_encode = cold.get("encode_micros").and_then(Json::as_f64).unwrap();
    let warm_encode = warm.get("encode_micros").and_then(Json::as_f64).unwrap();
    assert!(
        warm_encode < cold_encode,
        "warm encode {warm_encode}µs !< cold encode {cold_encode}µs"
    );

    // History saw both runs.
    let h = client
        .request(&req(r#"{"cmd":"history","session":"s"}"#))
        .unwrap();
    assert_eq!(h.get("entries").unwrap().as_arr().unwrap().len(), 2);

    handle.stop().unwrap();
}

#[test]
fn concurrent_clients_get_byte_identical_explanations() {
    let handle = boot(4);
    let addr = handle.addr().to_string();

    // One client registers; the table is shared per session, the cache
    // across sessions.
    let mut setup = Client::connect(&addr).unwrap();
    for session in ["a", "b", "c", "d"] {
        let r = setup
            .request(&req(&format!(
                r#"{{"cmd":"register_demo","session":"{session}","rows":{ROWS},"seed":{SEED}}}"#
            )))
            .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }

    let reference = serial_reference();
    let rendered: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["a", "b", "c", "d"]
            .into_iter()
            .map(|session| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let explain = req(&format!(
                        r#"{{"cmd":"explain","session":"{session}","sql":"{SQL}"}}"#
                    ));
                    // Two rounds each: cold-ish and warm interleavings.
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        let r = client.request(&explain).unwrap();
                        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
                        out.push(
                            r.get("rendered")
                                .and_then(Json::as_str)
                                .unwrap()
                                .to_string(),
                        );
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(rendered.len(), 8);
    for (i, r) in rendered.iter().enumerate() {
        assert_eq!(r, &reference, "client run {i} diverged from serial path");
    }

    // All four sessions share one cache: at most one cold encode of the
    // (content-identical) table.
    let m = handle.service().manager().cache().metrics();
    assert!(m.hits >= 7, "expected ≥7 cache hits, got {m:?}");

    handle.stop().unwrap();
}

#[test]
fn http_fallback_answers_curl_shaped_requests() {
    let handle = boot(2);
    let addr = handle.addr();

    // POST /api
    let body = r#"{"cmd":"ping"}"#;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /api HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains(r#""pong":true"#), "{response}");

    // GET /healthz and /metrics
    for (path, needle) in [("/healthz", r#""pong":true"#), ("/metrics", r#""cache""#)] {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains(needle), "{path}: {response}");
    }

    // Unknown route → 404 envelope, not a dropped connection.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    handle.stop().unwrap();
}

#[test]
fn connection_cap_refuses_with_typed_error() {
    let service = Arc::new(ExplainService::default());
    let handle = Server::bind(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            session_quota: 2,
            max_connections: 1,
            ..Default::default()
        },
        service,
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr().to_string();

    // First connection occupies the single slot (and proves it works).
    let mut first = Client::connect(&addr).unwrap();
    let r = first.request(&req(r#"{"cmd":"ping"}"#)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

    // Second connection is refused with one typed error line, not a
    // silent drop. (The refusal may race the accept loop; poll briefly.)
    let mut refused = None;
    for _ in 0..50 {
        let mut c = Client::connect(&addr).unwrap();
        match c.request_raw(r#"{"cmd":"ping"}"#) {
            Ok(line) if line.contains(r#""code":"overloaded""#) => {
                refused = Some(line);
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let line = refused.expect("over-cap connection must receive the typed refusal");
    let r = json::parse(&line).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)));

    // The admitted connection still works.
    let r = first.request(&req(r#"{"cmd":"ping"}"#)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    handle.stop().unwrap();
}

#[test]
fn traced_explain_reports_spans_and_resolves_in_the_flight_recorder() {
    let handle = boot(2);
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let r = client
        .request(&req(&format!(
            r#"{{"cmd":"register_demo","session":"t","rows":{ROWS},"seed":{SEED}}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");

    let traced = req(&format!(
        r#"{{"cmd":"explain","session":"t","sql":"{SQL}","trace":true}}"#
    ));
    let t0 = std::time::Instant::now();
    let cold = client.request(&traced).unwrap();
    let wall_micros = t0.elapsed().as_micros() as f64;
    assert_eq!(cold.get("ok"), Some(&Json::Bool(true)), "{cold:?}");

    let trace = cold.get("trace").expect("traced explain carries a trace");
    let id = trace.get("id").and_then(Json::as_str).unwrap().to_string();
    assert!(
        id.strip_prefix("t-")
            .is_some_and(|hex| { hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()) }),
        "trace id {id:?} should be t-<16 hex digits>"
    );
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    assert_eq!(spans.len(), 5, "one span per pipeline stage: {spans:?}");
    let span_sum: f64 = spans
        .iter()
        .map(|s| s.get("micros").and_then(Json::as_f64).unwrap())
        .sum();
    let total = trace.get("total_micros").and_then(Json::as_f64).unwrap();
    assert_eq!(total, span_sum, "spans must account for the whole pipeline");
    assert!(
        total <= wall_micros,
        "pipeline {total}µs cannot exceed client wall {wall_micros}µs"
    );

    // A warm traced run gets a *fresh* id and shows its cache hits in
    // the span-level cache consultations.
    let warm = client.request(&traced).unwrap();
    let warm_trace = warm.get("trace").unwrap();
    let warm_id = warm_trace.get("id").and_then(Json::as_str).unwrap();
    assert_ne!(warm_id, id, "every request gets its own trace id");
    let warm_hit = warm_trace
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|s| s.get("cache").and_then(Json::as_arr))
        .flatten()
        .any(|c| c.get("hit") == Some(&Json::Bool(true)));
    assert!(
        warm_hit,
        "warm run shows no cache hit in its spans: {warm:?}"
    );

    // Untraced requests stay untraced — no "trace" key in the response.
    let plain = client
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"t","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert!(plain.get("trace").is_none(), "{plain:?}");

    // The flight recorder replays the cold request's timeline by id:
    // per-stage events plus the scheduler's dispatch/finish bracketing.
    let dump = client
        .request(&req(&format!(
            r#"{{"cmd":"debug_dump","trace_id":"{id}"}}"#
        )))
        .unwrap();
    assert_eq!(dump.get("ok"), Some(&Json::Bool(true)), "{dump:?}");
    let events = dump.get("events").and_then(Json::as_arr).unwrap();
    assert!(!events.is_empty(), "no events for trace {id}");
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"stage"), "{kinds:?}");
    assert!(kinds.contains(&"finish"), "{kinds:?}");
    for e in events {
        assert_eq!(e.get("trace_id").and_then(Json::as_str), Some(id.as_str()));
    }

    handle.stop().unwrap();
}

#[test]
fn prometheus_scrape_is_valid_and_counts_every_request() {
    let handle = boot(2);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let r = client
        .request(&req(&format!(
            r#"{{"cmd":"register_demo","session":"p","rows":{ROWS},"seed":{SEED}}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    let r = client
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"p","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    let r = client.request(&req(r#"{"cmd":"ping"}"#)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));

    // Without the text/plain Accept, /metrics stays JSON (curl users and
    // the pre-PR 9 smoke keep working).
    let (status, body) = Client::http_get(&addr, "/metrics", "application/json").unwrap();
    assert!(status.contains("200"), "{status}");
    assert!(body.trim_start().starts_with('{'), "{body}");
    assert!(body.contains(r#""cache""#), "{body}");

    // The Prometheus scrape parses under the strict validator: TYPE
    // before samples, monotonic cumulative buckets, +Inf == _count.
    let (status, text) = Client::http_get(&addr, "/metrics", "text/plain").unwrap();
    assert!(status.contains("200"), "{status}");
    let exp = fedex_obs::validate_exposition(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    for family in [
        "fedex_request_duration_seconds",
        "fedex_admission_wait_seconds",
        "fedex_service_time_seconds",
        "fedex_stage_duration_seconds",
    ] {
        assert_eq!(
            exp.types.get(family).map(String::as_str),
            Some("histogram"),
            "{family} missing or mistyped"
        );
    }
    // Every wire command exposes a series, and the per-command counts
    // sum to exactly the request counter — nothing escapes the
    // histograms (the direct scrape itself bumps no counters).
    let requests = exp.sum("fedex_requests_total").unwrap();
    let mut hist_total = 0.0;
    for cmd in fedex_obs::WIRE_COMMANDS {
        hist_total += exp
            .value_with("fedex_request_duration_seconds_count", "cmd", cmd)
            .unwrap_or_else(|| panic!("no series for cmd={cmd:?}"));
    }
    assert_eq!(hist_total, requests, "\n{text}");
    // The one explain above drove every pipeline stage through its
    // stage histogram.
    for stage in fedex_obs::STAGES {
        let count = exp
            .value_with("fedex_stage_duration_seconds_count", "stage", stage)
            .unwrap_or_else(|| panic!("no series for stage={stage:?}"));
        assert!(count >= 1.0, "stage {stage} never observed");
    }

    // The flight-recorder HTTP endpoint serves the same dump as the
    // debug_dump command.
    let (status, body) = Client::http_get(&addr, "/debug/requests", "application/json").unwrap();
    assert!(status.contains("200"), "{status}");
    let dump = json::parse(&body).unwrap();
    assert_eq!(dump.get("ok"), Some(&Json::Bool(true)), "{body}");
    assert!(
        dump.get("events")
            .and_then(Json::as_arr)
            .is_some_and(|e| !e.is_empty()),
        "{body}"
    );

    handle.stop().unwrap();
}

#[test]
fn malformed_lines_do_not_kill_the_connection() {
    let handle = boot(1);
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let r = client.request_raw("{broken json").unwrap();
    assert!(r.contains(r#""ok":false"#));
    // The same connection still serves valid requests.
    let r = client.request(&req(r#"{"cmd":"ping"}"#)).unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    handle.stop().unwrap();
}
