//! Failure-path contracts over a real loopback socket: injected panics
//! answer typed and the session recovers, expired deadlines answer fast
//! and typed, a disconnected leader never leaks the coalescing slot, and
//! degraded explains are deterministic.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fedex_serve::{
    json, Client, DegradeMode, ExplainService, FaultPlan, Json, Server, ServerConfig, ServerHandle,
};

const SQL: &str = "SELECT * FROM spotify WHERE popularity > 65";

fn boot(degrade: DegradeMode) -> ServerHandle {
    let service = Arc::new(ExplainService::default());
    Server::bind(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            session_quota: 4,
            max_connections: 64,
            degrade,
            ..Default::default()
        },
        service,
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn server")
}

fn req(text: &str) -> Json {
    json::parse(text).unwrap()
}

fn register(addr: &str, session: &str, rows: usize) {
    let mut c = Client::connect(addr).unwrap();
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"register_demo","session":"{session}","rows":{rows},"seed":5}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
}

fn code_of(r: &Json) -> Option<&str> {
    r.get("code").and_then(Json::as_str)
}

/// Poll the scheduler gauges until all queues are empty — a leaked job or
/// coalescing slot shows up as a gauge that never drains.
fn assert_drains(addr: &str) {
    let mut probe = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        let sched = m.get("scheduler").expect("scheduler metrics");
        let backlog = ["queued_control", "queued_heavy", "running_heavy"]
            .iter()
            .map(|g| sched.get(g).and_then(Json::as_f64).unwrap_or(0.0))
            .sum::<f64>();
        if backlog == 0.0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "scheduler never drained: {sched:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn injected_panic_answers_typed_and_the_session_recovers() {
    let handle = boot(DegradeMode::Off);
    let addr = handle.addr().to_string();
    register(&addr, "s", 4_000);

    // Every explain panics mid-pipeline, inside the session write lock —
    // the worst place: the lock is poisoned at the moment of unwind.
    let plan = FaultPlan::parse("seed=1,panic=1.0").unwrap();
    handle.service().set_faults(Some(Arc::new(plan)));

    let mut c = Client::connect(&addr).unwrap();
    let r = c.request(&req(&format!(
        r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
    )));
    let r = r.unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
    assert_eq!(code_of(&r), Some("internal_error"), "{r:?}");
    let incident = r.get("incident").and_then(Json::as_str).unwrap();
    assert!(incident.starts_with("inc-"), "stable incident id: {r:?}");
    assert!(
        handle
            .service()
            .metrics()
            .panics
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "panic must be counted"
    );

    // Faults off: the same session, same connection, same query must
    // succeed — the panic poisoned nothing that recovery can't clear, and
    // the failed run left no coalescing entry to collide with.
    handle.service().set_faults(None);
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    assert_drains(&addr);
    handle.stop().unwrap();
}

#[test]
fn expired_deadline_answers_fast_and_typed() {
    let handle = boot(DegradeMode::Off);
    let addr = handle.addr().to_string();
    // Big enough that a cold explain takes O(seconds) — the 300ms budget
    // below cannot fit it.
    register(&addr, "s", 150_000);

    let mut c = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"s","sql":"{SQL}","deadline_ms":300}}"#
        )))
        .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
    assert_eq!(code_of(&r), Some("deadline_exceeded"), "{r:?}");
    // The waiter must give up at the deadline, not when the explain would
    // have finished. Generous slack for CI scheduling jitter.
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline response took {elapsed:?}"
    );

    // The worker either skipped the expired job outright or the pipeline
    // observed the tripped token at the next stage/work-unit boundary; in
    // both cases the session keeps working.
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    assert_drains(&addr);
    handle.stop().unwrap();
}

#[test]
fn disconnected_leader_leaks_no_coalescing_slot() {
    let handle = boot(DegradeMode::Off);
    let addr = handle.addr().to_string();
    register(&addr, "s", 150_000);

    // Leader: submit the explain and hang up without reading — its waiter
    // detaches once the liveness probe sees the dead socket.
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!(r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}{}"#, "\n").as_bytes(),
        )
        .unwrap();
        // Give the server time to admit the job before the socket dies.
        std::thread::sleep(Duration::from_millis(150));
    }

    // Follower with the identical query: it either attaches to the
    // leader's still-running job (and inherits its response) or — if the
    // leader's detach already doomed that job — starts a fresh run. Both
    // must answer ok.
    let mut c = Client::connect(&addr).unwrap();
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");

    // A third identical explain after everything settled: a leaked
    // in-flight signature would wedge or mis-coalesce it.
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    assert_drains(&addr);
    handle.stop().unwrap();
}

#[test]
fn degraded_explains_are_deterministic() {
    let handle = boot(DegradeMode::Force);
    let addr = handle.addr().to_string();
    register(&addr, "s", 20_000);

    let mut c = Client::connect(&addr).unwrap();
    let explain = req(&format!(
        r#"{{"cmd":"explain","session":"s","sql":"{SQL}"}}"#
    ));
    let first = c.request(&explain).unwrap();
    let second = c.request(&explain).unwrap();
    for r in [&first, &second] {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)), "{r:?}");
        let bound = r.get("error_bound").and_then(Json::as_f64).unwrap();
        assert!(bound > 0.0 && bound < 1.0, "DKW bound in (0,1): {bound}");
        assert!(r.get("sample_size").and_then(Json::as_f64).unwrap() > 0.0);
    }
    assert_eq!(
        first.get("rendered").and_then(Json::as_str),
        second.get("rendered").and_then(Json::as_str),
        "the sampling path is seeded: same request, same bytes"
    );
    handle.stop().unwrap();
}
