//! Admission-scheduler contracts over a real loopback socket:
//!
//! * cheap control commands complete while a long explain is in flight
//!   (the dedicated control worker — pre-PR 5, a single-worker server
//!   blocked every other client for the whole explain);
//! * a full heavy queue answers the typed `overloaded` error and a
//!   session past its quota gets `quota_exceeded` — never unbounded
//!   queueing;
//! * identical concurrent explains coalesce into one pipeline run whose
//!   response every attached client receives byte-for-byte.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fedex_serve::{
    json, Client, DegradeMode, ExplainService, Json, Server, ServerConfig, ServerHandle,
};

/// Large enough that one cold explain takes O(seconds) on CI hardware —
/// the window in which control latency and admission bounds are observed.
const BIG_ROWS: usize = 150_000;
const SQL: &str = "SELECT * FROM spotify WHERE popularity > 65";

fn boot(workers: usize, queue_depth: usize, session_quota: usize) -> ServerHandle {
    let service = Arc::new(ExplainService::default());
    Server::bind(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            session_quota,
            max_connections: 64,
            // These tests pin the overloaded/quota_exceeded contracts;
            // auto-degradation would serve the pressure cases instead of
            // rejecting them.
            degrade: DegradeMode::Off,
            ..Default::default()
        },
        service,
    )
    .expect("bind loopback")
    .spawn()
    .expect("spawn server")
}

fn req(text: &str) -> Json {
    json::parse(text).unwrap()
}

fn register_big(addr: &str, session: &str) {
    let mut c = Client::connect(addr).unwrap();
    let r = c
        .request(&req(&format!(
            r#"{{"cmd":"register_demo","session":"{session}","rows":{BIG_ROWS},"seed":5}}"#
        )))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
}

fn explain_req(session: &str, sql: &str) -> Json {
    req(&format!(
        r#"{{"cmd":"explain","session":"{session}","sql":"{sql}"}}"#
    ))
}

/// Scheduler gauge out of a `metrics` response.
fn sched_gauge(metrics: &Json, field: &str) -> f64 {
    metrics
        .get("scheduler")
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("metrics response lacks scheduler.{field}: {metrics:?}"))
}

#[test]
fn control_commands_are_served_while_a_long_explain_runs() {
    // ONE general worker: pre-scheduler, this server could do exactly one
    // thing at a time and a second connection waited for the first to
    // close. The dedicated control worker must keep ping/metrics flowing.
    let handle = boot(1, 16, 4);
    let addr = handle.addr().to_string();
    register_big(&addr, "a");

    let explain_thread = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request(&explain_req("a", SQL)).unwrap()
        })
    };

    // Hammer control commands on a second connection while the explain
    // occupies the only general worker.
    let mut control = Client::connect(&addr).unwrap();
    let mut saw_explain_in_flight = false;
    let mut worst = Duration::ZERO;
    for _ in 0..40 {
        let t0 = Instant::now();
        let pong = control.request(&req(r#"{"cmd":"ping"}"#)).unwrap();
        let m = control.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        worst = worst.max(t0.elapsed());
        assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)));
        if sched_gauge(&m, "running_heavy") > 0.0 {
            saw_explain_in_flight = true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let explained = explain_thread.join().expect("explain thread");
    assert_eq!(
        explained.get("ok"),
        Some(&Json::Bool(true)),
        "{explained:?}"
    );
    assert!(
        saw_explain_in_flight,
        "the probe window never overlapped the explain — enlarge BIG_ROWS"
    );
    // Generous bound: the failure mode this guards against is multi-second
    // head-of-line blocking behind the explain; real control latency is
    // sub-millisecond.
    assert!(
        worst < Duration::from_secs(1),
        "control round-trip degraded to {worst:?} during an explain"
    );
    handle.stop().unwrap();
}

#[test]
fn full_queue_and_quota_violations_get_typed_errors() {
    // One general worker, one queue slot, one heavy request per session.
    let handle = boot(1, 1, 1);
    let addr = handle.addr().to_string();
    // Session "a" gets a much larger table: its explain is the
    // long-running job that holds the worker for the whole test, so the
    // queue-full window below is seconds wide, not milliseconds.
    {
        let mut c = Client::connect(&addr).unwrap();
        let r = c
            .request(&req(&format!(
                r#"{{"cmd":"register_demo","session":"a","rows":{},"seed":5}}"#,
                BIG_ROWS * 4
            )))
            .unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
    for s in ["b", "c"] {
        register_big(&addr, s);
    }

    // Occupy the worker with the long explain in session "a".
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request(&explain_req("a", SQL)).unwrap()
        })
    };
    // Wait until it is actually running (not merely queued).
    let mut probe = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    loop {
        let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        if sched_gauge(&m, "running_heavy") > 0.0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "explain never started"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Same session, different query → quota_exceeded (1 already running).
    let mut c = Client::connect(&addr).unwrap();
    let r = c
        .request(&explain_req(
            "a",
            "SELECT * FROM spotify WHERE popularity > 80",
        ))
        .unwrap();
    assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
    assert_eq!(
        r.get("code").and_then(Json::as_str),
        Some("quota_exceeded"),
        "{r:?}"
    );

    // Another session fills the single queue slot (blocks until served).
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request(&explain_req("b", SQL)).unwrap()
        })
    };
    // "b" stays queued for as long as "a" runs (the single worker is
    // held), so this wait is bounded only by thread-startup time.
    let t0 = Instant::now();
    loop {
        let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        if sched_gauge(&m, "queued_heavy") > 0.0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "explain never queued"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Third session: the queue slot is taken by "b" and the worker by
    // "a" → overloaded. Retried only against the (tiny) race where "a"
    // finishes right now.
    let mut saw_overloaded = false;
    for _ in 0..50 {
        let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        let backlog = sched_gauge(&m, "queued_heavy") + sched_gauge(&m, "running_heavy");
        if backlog < 2.0 {
            break; // backlog drained; rejection no longer expected
        }
        let r = c.request(&explain_req("c", SQL)).unwrap();
        if r.get("code").and_then(Json::as_str) == Some("overloaded") {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
            saw_overloaded = true;
            break;
        }
    }
    let first = first.join().unwrap();
    let queued = queued.join().unwrap();
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first:?}");
    assert_eq!(queued.get("ok"), Some(&Json::Bool(true)), "{queued:?}");
    assert!(
        saw_overloaded,
        "a full queue must answer the typed overloaded error"
    );
    let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
    assert!(sched_gauge(&m, "rejected_quota") >= 1.0);
    assert!(sched_gauge(&m, "rejected_overloaded") >= 1.0);
    handle.stop().unwrap();
}

#[test]
fn identical_concurrent_explains_coalesce_into_one_run() {
    // Quota 1 makes the contract sharp: the follower is only admitted at
    // all because it attaches to the in-flight identical job instead of
    // charging the quota.
    let handle = boot(2, 16, 1);
    let addr = handle.addr().to_string();
    register_big(&addr, "s");

    let leader = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.request_raw(&explain_req("s", SQL).to_string()).unwrap()
        })
    };
    // Give the leader time to be admitted and start running.
    let mut probe = Client::connect(&addr).unwrap();
    let t0 = Instant::now();
    loop {
        let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
        if sched_gauge(&m, "running_heavy") > 0.0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "leader never started"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut follower_client = Client::connect(&addr).unwrap();
    let follower = follower_client
        .request_raw(&explain_req("s", SQL).to_string())
        .unwrap();
    let leader = leader.join().unwrap();

    let leader_json = json::parse(&leader).unwrap();
    assert_eq!(leader_json.get("ok"), Some(&Json::Bool(true)), "{leader}");
    // If the follower arrived in the coalescing window it shares the
    // leader's response verbatim; metrics tell us whether it did.
    let m = probe.request(&req(r#"{"cmd":"metrics"}"#)).unwrap();
    if sched_gauge(&m, "coalesced") >= 1.0 {
        assert_eq!(leader, follower, "coalesced responses must be one object");
        // One pipeline run → one history entry for the shared job.
        let h = probe
            .request(&req(r#"{"cmd":"history","session":"s"}"#))
            .unwrap();
        assert_eq!(
            h.get("entries").unwrap().as_arr().unwrap().len(),
            1,
            "coalesced explains share one history entry: {h:?}"
        );
    } else {
        // Fell outside the window (leader finished first): the follower
        // ran privately and must still be ok + byte-identical rendering.
        let follower_json = json::parse(&follower).unwrap();
        assert_eq!(follower_json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            leader_json.get("rendered").and_then(Json::as_str),
            follower_json.get("rendered").and_then(Json::as_str),
        );
    }
    handle.stop().unwrap();
}

#[test]
fn error_responses_carry_machine_readable_codes() {
    let handle = boot(1, 4, 2);
    let mut c = Client::connect(&handle.addr().to_string()).unwrap();
    let cases = [
        ("{not json", "invalid_json"),
        (r#"{"cmd":"frobnicate"}"#, "unknown_cmd"),
        (r#"{"cmd":"explain","session":"x"}"#, "bad_request"),
        (
            r#"{"cmd":"explain","session":"x","sql":"SELEKT nope"}"#,
            "explain_failed",
        ),
        (
            r#"{"cmd":"register","session":"x","table":"t"}"#,
            "bad_request",
        ),
    ];
    for (line, code) in cases {
        let raw = c.request_raw(line).unwrap();
        let r = json::parse(&raw).unwrap();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{line}");
        assert_eq!(
            r.get("code").and_then(Json::as_str),
            Some(code),
            "{line} → {raw}"
        );
    }
    handle.stop().unwrap();
}
