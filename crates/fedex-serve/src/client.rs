//! A blocking NDJSON client for the explanation service — used by the CLI
//! `client` subcommand, the CI smoke job, and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::json::{self, Json};

/// One connection speaking newline-delimited JSON.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round-trips are latency-bound: without
        // TCP_NODELAY, Nagle holds small segments for the peer's delayed
        // ACK and a ping costs ~80ms instead of microseconds.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request object, wait for the response object.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&req.to_string())?;
        json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send one raw request line, return the raw response line.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        // One write per request: a separate `\n` write would be a second
        // small segment Nagle could stall on.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}
