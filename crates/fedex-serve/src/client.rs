//! A blocking NDJSON client for the explanation service — used by the CLI
//! `client` subcommand, the CI smoke job, and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::json::{self, Json};

/// Retry discipline for [`Client::request_with_retry`]: capped
/// exponential backoff with deterministic jitter, bounded by both an
/// attempt count and a wall-clock budget.
///
/// Only *transient* failures retry — connect/transport errors and the
/// typed backpressure responses `overloaded` and `shutting_down`. A
/// response like `explain_failed` or `bad_request` is the server
/// answering correctly about a bad request; retrying it would just repeat
/// the answer (and re-run a failed explain), so it is returned as-is.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = a single attempt, no retry).
    pub retries: u32,
    /// Wall-clock budget across all attempts and backoff sleeps.
    pub budget: Duration,
    /// First backoff delay; doubles per retry up to `max_delay`.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed — fixed so test and bench runs are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            budget: Duration::from_secs(10),
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0x5eed,
        }
    }
}

/// Response codes worth retrying: the server refused *now*, not *this
/// request*.
fn retryable_code(line: &str) -> bool {
    match json::parse(line) {
        Ok(resp) => matches!(
            resp.get("code").and_then(Json::as_str),
            Some("overloaded") | Some("shutting_down")
        ),
        // Unparseable response: torn write or mid-line disconnect —
        // transient by definition.
        Err(_) => true,
    }
}

/// One connection speaking newline-delimited JSON.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `host:port`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round-trips are latency-bound: without
        // TCP_NODELAY, Nagle holds small segments for the peer's delayed
        // ACK and a ping costs ~80ms instead of microseconds.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request object, wait for the response object.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&req.to_string())?;
        json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send one raw request line, return the raw response line.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        // One write per request: a separate `\n` write would be a second
        // small segment Nagle could stall on.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// One HTTP/1.1 `GET` against the server's HTTP fallback, with an
    /// explicit `Accept` header — how the Prometheus scrape
    /// (`/metrics` with `Accept: text/plain`) and the flight-recorder
    /// endpoint (`/debug/requests`) are exercised by the bench harness
    /// and the integration tests. Returns `(status_line, body)`.
    pub fn http_get(addr: &str, path: &str, accept: &str) -> std::io::Result<(String, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: fedex\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        if reader.read_line(&mut status)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before the status line",
            ));
        }
        // Skip headers (Connection: close means the body runs to EOF).
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                break;
            }
        }
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body)?;
        Ok((status.trim_end().to_string(), body))
    }

    /// Send one raw request line with retries: reconnects per attempt
    /// (the previous connection may be half-dead after a transport
    /// error), retrying transport failures and the transient typed
    /// responses (`overloaded`, `shutting_down`) under `policy`'s
    /// backoff. Returns the last typed response when retries run out —
    /// the caller still gets the server's own words, not a synthetic
    /// error — and the last I/O error when the server was never
    /// reachable.
    pub fn request_with_retry(
        addr: &str,
        line: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<String> {
        let start = Instant::now();
        let mut rng = policy.seed | 1;
        let mut last: Option<std::io::Result<String>> = None;
        for attempt in 0..=policy.retries {
            let outcome = Client::connect(addr).and_then(|mut c| c.request_raw(line));
            match outcome {
                Ok(response) if !retryable_code(&response) => return Ok(response),
                outcome => last = Some(outcome),
            }
            if attempt == policy.retries {
                break;
            }
            // Exponential backoff with full jitter in the upper half:
            // delay ∈ [exp/2, exp), exp = base · 2^attempt, capped.
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.max_delay);
            // xorshift64: cheap deterministic jitter.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let jitter = (rng >> 11) as f64 / (1u64 << 53) as f64;
            let delay = exp.mul_f64(0.5 + 0.5 * jitter);
            let remaining = policy.budget.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(delay.min(remaining));
        }
        last.unwrap_or_else(|| {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "retry budget exhausted before any attempt",
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_backpressure_codes_retry() {
        assert!(retryable_code(
            r#"{"ok":false,"code":"overloaded","error":"x"}"#
        ));
        assert!(retryable_code(
            r#"{"ok":false,"code":"shutting_down","error":"x"}"#
        ));
        assert!(
            retryable_code(r#"{"ok":false,"code":"overl"#),
            "torn line is transient"
        );
        assert!(!retryable_code(
            r#"{"ok":false,"code":"explain_failed","error":"x"}"#
        ));
        assert!(!retryable_code(
            r#"{"ok":false,"code":"deadline_exceeded","error":"x"}"#
        ));
        assert!(!retryable_code(r#"{"ok":true}"#));
    }
}
