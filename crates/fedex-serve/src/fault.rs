//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] makes the server misbehave on purpose — worker panics
//! mid-explain, artificial stage latency, torn or slowed response writes,
//! and mid-response disconnects — so the chaos harness
//! (`serve_bench --chaos`) and `tests/faults.rs` can assert the recovery
//! machinery (panic isolation, deadlines, waiter detachment, typed error
//! codes) under sustained injected failure instead of hoping production
//! finds the gaps first.
//!
//! Decisions are drawn from a seeded counter-based generator
//! (SplitMix64), so a given seed yields the same fault *sequence* run to
//! run: the n-th decision of each kind is reproducible, independent of
//! thread scheduling. Plans are parsed from a compact spec string
//! (`"seed=7,panic=0.1,disconnect=0.05,torn=0.05,delay_ms=10"`) passed
//! via the `FEDEX_FAULTS` environment variable or bench flags. Rates are
//! probabilities in `[0, 1]`; `delay_ms` is added to every explain.
//!
//! The plan is injected **behind** the robustness layer under test: a
//! panic fires inside the session lock (exercising poisoned-lock
//! recovery), write faults fire on the response path (exercising write
//! timeouts and disconnect accounting). Production servers simply run
//! without a plan — every hook is an `Option` that defaults to `None`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seeded schedule of injected faults. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Independent decision counters per fault kind, so e.g. disconnect
    /// rolls don't perturb the panic sequence.
    rolls: [AtomicU64; 3],
    /// Probability an explain panics mid-run (inside the session lock).
    pub panic_rate: f64,
    /// Probability a response write is abandoned before any byte.
    pub disconnect_rate: f64,
    /// Probability a response write is torn: half the bytes, then close.
    pub torn_write_rate: f64,
    /// Artificial latency added to every explain (before the pipeline).
    pub stage_delay: Duration,
}

/// Index into [`FaultPlan::rolls`] per fault kind.
const ROLL_PANIC: usize = 0;
const ROLL_DISCONNECT: usize = 1;
const ROLL_TORN: usize = 2;

/// SplitMix64: the standard 64-bit finalizer-based generator — counter in,
/// well-mixed word out.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with every rate zero (useful as a parse base).
    fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rolls: Default::default(),
            panic_rate: 0.0,
            disconnect_rate: 0.0,
            torn_write_rate: 0.0,
            stage_delay: Duration::ZERO,
        }
    }

    /// Parse a spec string: comma-separated `key=value` pairs with keys
    /// `seed`, `panic`, `disconnect`, `torn` (rates in `[0,1]`) and
    /// `delay_ms`. Unknown keys are errors; an empty spec is a quiet plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::quiet(7);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|e| format!("fault rate {key}={v:?}: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate {key}={v:?} outside [0,1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault seed {value:?}: {e}"))?;
                }
                "panic" => plan.panic_rate = rate(value)?,
                "disconnect" => plan.disconnect_rate = rate(value)?,
                "torn" => plan.torn_write_rate = rate(value)?,
                "delay_ms" => {
                    plan.stage_delay = Duration::from_millis(
                        value
                            .parse()
                            .map_err(|e| format!("fault delay_ms {value:?}: {e}"))?,
                    );
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan named by the `FEDEX_FAULTS` environment variable, when
    /// set. A malformed spec is a startup error, not a silently quiet
    /// plan — a chaos run with a typo'd spec must not pass green.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("FEDEX_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw the next decision of kind `kind` against `rate`.
    fn roll(&self, kind: usize, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let n = self.rolls[kind].fetch_add(1, Ordering::Relaxed);
        let word = splitmix64(self.seed ^ ((kind as u64) << 56) ^ n);
        // Top 53 bits → uniform in [0, 1).
        let u = (word >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Should the current explain panic? (Checked inside the session
    /// lock, so a `true` exercises poisoned-lock recovery end to end.)
    pub fn should_panic(&self) -> bool {
        self.roll(ROLL_PANIC, self.panic_rate)
    }

    /// Should this response write be abandoned entirely?
    pub fn should_disconnect(&self) -> bool {
        self.roll(ROLL_DISCONNECT, self.disconnect_rate)
    }

    /// Should this response write be torn mid-line?
    pub fn should_tear_write(&self) -> bool {
        self.roll(ROLL_TORN, self.torn_write_rate)
    }

    /// Sleep the configured artificial stage latency (no-op when zero).
    pub fn inject_stage_delay(&self) {
        if !self.stage_delay.is_zero() {
            std::thread::sleep(self.stage_delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p = FaultPlan::parse("seed=11,panic=0.5,disconnect=0.25,torn=1.0,delay_ms=3").unwrap();
        assert_eq!(p.seed(), 11);
        assert_eq!(p.panic_rate, 0.5);
        assert_eq!(p.disconnect_rate, 0.25);
        assert_eq!(p.torn_write_rate, 1.0);
        assert_eq!(p.stage_delay, Duration::from_millis(3));
        assert!(p.should_tear_write(), "rate 1.0 always fires");
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(FaultPlan::parse("panic=1.5").is_err());
        assert!(FaultPlan::parse("wat=0.1").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn empty_spec_is_quiet() {
        let p = FaultPlan::parse("").unwrap();
        for _ in 0..64 {
            assert!(!p.should_panic());
            assert!(!p.should_disconnect());
            assert!(!p.should_tear_write());
        }
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let a = FaultPlan::parse("seed=9,panic=0.3").unwrap();
        let b = FaultPlan::parse("seed=9,panic=0.3").unwrap();
        let seq = |p: &FaultPlan| (0..256).map(|_| p.should_panic()).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b));
        let fired = seq(&a).iter().filter(|&&x| x).count();
        // 256 more draws from the same plan: the rate holds statistically.
        assert!(fired > 40 && fired < 120, "{fired} of 256 at rate 0.3");
    }

    #[test]
    fn kinds_roll_independently() {
        let p = FaultPlan::parse("seed=9,panic=0.3,disconnect=0.3").unwrap();
        let q = FaultPlan::parse("seed=9,panic=0.3,disconnect=0.3").unwrap();
        // Interleaving disconnect draws must not shift the panic sequence.
        let seq_p: Vec<bool> = (0..64)
            .map(|_| {
                let _ = p.should_disconnect();
                p.should_panic()
            })
            .collect();
        let seq_q: Vec<bool> = (0..64).map(|_| q.should_panic()).collect();
        assert_eq!(seq_p, seq_q);
    }
}
