//! The multi-threaded TCP front-end.
//!
//! Transport is newline-delimited JSON: one request object per line, one
//! response object per line, connections carry any number of requests. A
//! minimal HTTP/1.1 fallback answers `POST /api` (body = one request
//! object), `GET /metrics`, and `GET /healthz`, so `curl` works against
//! the same port — the first bytes of a connection decide the mode.
//!
//! Concurrency is **admission-scheduled** (see [`crate::sched`]): each
//! accepted connection gets a lightweight I/O thread that reads lines,
//! submits them to the shared [`Scheduler`], and writes the responses
//! back in order. The actual work runs on a fixed worker pool behind two
//! bounded priority queues — cheap control commands are never starved
//! behind long explains (a dedicated control worker guarantees this even
//! when every general worker is busy), a full explain queue is answered
//! with the typed `overloaded` error instead of queueing without bound,
//! and identical concurrent explains coalesce into one pipeline run.
//! `GET /healthz` bypasses the queues entirely so liveness probes stay
//! meaningful under overload.
//!
//! Session state lives in the shared [`ExplainService`]; the artifact
//! cache underneath makes concurrent explains over the same registered
//! tables cheap, and determinism of the explain pipeline makes them
//! byte-identical.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::json::{self, Json};
use crate::sched::{DegradeMode, Scheduler, SchedulerConfig};
use crate::service::ExplainService;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4641` (port 0 = ephemeral).
    pub addr: String,
    /// General scheduler workers (run both control and heavy jobs). One
    /// extra dedicated control worker is always spawned on top.
    pub workers: usize,
    /// Bound of the heavy (explain/register) queue; a full queue answers
    /// the typed `overloaded` error (CLI: `--queue-depth`).
    pub queue_depth: usize,
    /// Max heavy requests one session may have queued + running before
    /// `quota_exceeded` (CLI: `--session-quota`).
    pub session_quota: usize,
    /// Max concurrent connections, each backed by one lightweight I/O
    /// thread. Accepts beyond it are answered with one `overloaded`
    /// error line and closed — the work queues are bounded by
    /// `queue_depth`, this bounds the thread population itself.
    pub max_connections: usize,
    /// Deadline budget for requests without their own `deadline_ms`
    /// field; `0` disables the default (CLI: `--default-deadline-ms`).
    pub default_deadline_ms: u64,
    /// When explains may degrade to the FEDEX-Sampling path (CLI:
    /// `--degrade off|auto|force`).
    pub degrade: DegradeMode,
    /// Timeout on every response write; a peer that stops reading frees
    /// the I/O thread after this long (CLI: `--write-timeout-ms`).
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let sched = SchedulerConfig::default();
        ServerConfig {
            addr: "127.0.0.1:4641".to_string(),
            workers: 4,
            queue_depth: sched.queue_depth,
            session_quota: sched.session_quota,
            max_connections: 1024,
            default_deadline_ms: sched.default_deadline_ms,
            degrade: sched.degrade,
            write_timeout_ms: 5_000,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<ExplainService>,
    workers: usize,
    max_connections: usize,
    write_timeout: Duration,
    sched_config: SchedulerConfig,
}

impl Server {
    /// Bind `config.addr` over `service`.
    pub fn bind(config: &ServerConfig, service: Arc<ExplainService>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service,
            workers: config.workers.max(1),
            max_connections: config.max_connections.max(1),
            write_timeout: Duration::from_millis(config.write_timeout_ms.max(1)),
            sched_config: SchedulerConfig {
                queue_depth: config.queue_depth.max(1),
                session_quota: config.session_quota.max(1),
                default_deadline_ms: config.default_deadline_ms,
                degrade: config.degrade,
            },
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve until a `shutdown` request arrives. Blocks the
    /// calling thread; scheduler workers and connection I/O threads are
    /// joined before returning.
    pub fn run(self) -> std::io::Result<()> {
        // Non-blocking accept so the loop can observe the shutdown flag
        // (a `shutdown` request is served by a worker, not the acceptor).
        self.listener.set_nonblocking(true)?;
        let scheduler = Scheduler::new(self.service.clone(), self.sched_config);
        let active_connections = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            // The dedicated control worker + the general pool.
            scope.spawn(|| scheduler.worker_loop(true));
            for _ in 0..self.workers {
                scope.spawn(|| scheduler.worker_loop(false));
            }
            loop {
                if self.service.shutdown_requested() {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // BSD-derived platforms (macOS included) hand out
                        // accepted sockets that inherit the listener's
                        // non-blocking flag; reset it so connection reads
                        // block on their timeout instead of spinning.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        // Response lines are small; Nagle + the client's
                        // delayed ACK would add ~40ms to every reply.
                        let _ = stream.set_nodelay(true);
                        // Bound the I/O-thread population: past the cap,
                        // answer one typed error line and close instead
                        // of spawning (a flood of idle keep-alive
                        // connections would otherwise grow threads
                        // without bound — the queues only bound *work*).
                        if active_connections.load(Ordering::Acquire) >= self.max_connections {
                            refuse_connection(stream, self.max_connections, self.write_timeout);
                            continue;
                        }
                        active_connections.fetch_add(1, Ordering::AcqRel);
                        self.service
                            .metrics()
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        // One lightweight I/O thread per connection: it
                        // only parses lines, waits on the scheduler, and
                        // writes responses — explains no longer pin it to
                        // a worker-pool slot. Exits on client EOF, idle
                        // keep-alive expiry, or shutdown (within one
                        // read-timeout tick), so the scope join below is
                        // bounded.
                        let scheduler = &scheduler;
                        let service = &*self.service;
                        let active_connections = &active_connections;
                        let write_timeout = self.write_timeout;
                        scope.spawn(move || {
                            let _ = serve_connection(stream, scheduler, service, write_timeout);
                            active_connections.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        // A dead listener (fd exhaustion, interface gone)
                        // must not wedge the process: raise the shutdown
                        // flag so workers and connection threads drain and
                        // the scope join below terminates, then surface
                        // the error to the caller.
                        self.service.request_shutdown();
                        return Err(e);
                    }
                }
            }
            Ok(())
        })
    }

    /// Run on a background thread; returns once the listener is live.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = self.service.clone();
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            service,
            thread,
        })
    }
}

/// Handle to a background server: address + graceful stop.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    service: Arc<ExplainService>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Where the server listens.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared service (e.g. to read metrics in tests).
    pub fn service(&self) -> &Arc<ExplainService> {
        &self.service
    }

    /// Request shutdown and join the server thread. Sets the flag
    /// directly on the shared service — it does not need a free worker
    /// slot, so it succeeds even when every worker is pinned by an open
    /// connection.
    pub fn stop(self) -> std::io::Result<()> {
        self.service.request_shutdown();
        self.thread.join().expect("server thread panicked")
    }
}

/// Refuse a connection over the `max_connections` cap: best-effort write
/// of one typed error line, then close. The write timeout keeps a
/// non-reading peer from stalling the acceptor.
fn refuse_connection(mut stream: TcpStream, cap: usize, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout.min(Duration::from_millis(250))));
    let line = json::obj([
        ("ok", Json::Bool(false)),
        ("code", json::s("overloaded")),
        (
            "error",
            json::s(format!("connection limit reached ({cap})")),
        ),
    ])
    .to_string();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Serve one connection in whichever protocol its first line speaks.
/// Is this NDJSON line the health probe? Parsed properly (clients are
/// free to format the object however they like); control lines are tiny,
/// so the extra parse costs nothing next to the socket round-trip.
fn is_ping(line: &str) -> bool {
    json::parse(line)
        .map(|r| r.get("cmd").and_then(Json::as_str) == Some("ping"))
        .unwrap_or(false)
}

fn serve_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    service: &ExplainService,
    write_timeout: Duration,
) -> std::io::Result<()> {
    // Short read timeout: between client requests the I/O thread wakes up
    // regularly to observe a server shutdown, so idle keep-alive
    // connections can never outlive `shutdown` (they would otherwise
    // deadlock a graceful stop).
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    // A peer that stops reading can stall a response write for at most
    // this long before the I/O thread frees itself (typed as a
    // disconnect below).
    stream.set_write_timeout(Some(write_timeout))?;
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut writer = peer;

    let mut first = Vec::new();
    if read_line_shutdown_aware(&mut reader, &mut first, service)? == 0 {
        return Ok(());
    }
    let first = String::from_utf8_lossy(&first).into_owned();
    if let Some(request_line) = http_request_line(&first) {
        return serve_http(reader, writer, scheduler, service, request_line);
    }
    // Client-liveness probe, polled by the scheduler while this thread
    // waits on a job: a 1ms peek on a clone of the socket. `Ok(0)` is
    // EOF (peer closed); a timeout means no bytes yet — still alive.
    // Cloned fds share SO_RCVTIMEO, so the timeout is restored to the
    // read loop's tick before returning; this is safe because the same
    // thread does both — it's never probing while a read is blocked.
    let probe = writer.try_clone()?;
    let is_alive = move || -> bool {
        if probe
            .set_read_timeout(Some(Duration::from_millis(1)))
            .is_err()
        {
            return false;
        }
        let mut byte = [0u8; 1];
        let alive = match probe.peek(&mut byte) {
            Ok(0) => false,
            Ok(_) => true,
            Err(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
        };
        let _ = probe.set_read_timeout(Some(Duration::from_millis(100)));
        alive
    };
    // NDJSON: the first line is already a request; keep reading lines.
    let mut line = first;
    let mut buf = Vec::new();
    let mut out = Vec::new();
    loop {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        // Health probes answer from the connection thread itself, like
        // `GET /healthz`: a ping measures transport liveness, and routing
        // it through the scheduler adds two thread hops whose wakeup
        // latency dominates the probe on loaded (or single-core) hosts.
        let response = if is_ping(trimmed) {
            service.dispatch_line(trimmed)
        } else {
            scheduler.handle_line_hooked(trimmed, Some(&is_alive))
        };
        // One write per response (see `Client::request_raw`).
        out.clear();
        out.extend_from_slice(response.as_bytes());
        out.push(b'\n');
        // Injected write faults (chaos runs only): abandon or tear the
        // response — the client sees a disconnect mid-response, the
        // server must account it and carry on.
        if let Some(plan) = service.faults() {
            if plan.should_disconnect() {
                service
                    .metrics()
                    .disconnects
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if plan.should_tear_write() {
                service
                    .metrics()
                    .disconnects
                    .fetch_add(1, Ordering::Relaxed);
                let _ = writer.write_all(&out[..out.len() / 2]);
                return Ok(());
            }
        }
        if let Err(e) = writer.write_all(&out).and_then(|()| writer.flush()) {
            service
                .metrics()
                .disconnects
                .fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        buf.clear();
        if read_line_shutdown_aware(&mut reader, &mut buf, service)? == 0 {
            return Ok(());
        }
        line = String::from_utf8_lossy(&buf).into_owned();
        if line.trim().is_empty() {
            return Ok(());
        }
    }
}

/// Keep-alive limit for idle NDJSON connections: an I/O thread held by a
/// silent client frees itself after this long, bounding the worst-case
/// connection-thread population.
const IDLE_KEEPALIVE: Duration = Duration::from_secs(120);

/// Read one `\n`-terminated line of raw bytes, treating a read timeout as
/// "check the shutdown flag and keep waiting". This deliberately wraps
/// `read_until` (bytes), not `read_line` (String): on the error path
/// `read_line` truncates everything appended during the failed call —
/// losing bytes a slow client already sent whenever the timeout fires
/// mid-line — while `read_until` keeps partial data in `buf`, so resuming
/// is lossless. UTF-8 conversion happens once, after the full line
/// arrived. Returns 0 on EOF, when shutdown interrupts an idle wait, or
/// when the idle keep-alive expires.
fn read_line_shutdown_aware(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    service: &ExplainService,
) -> std::io::Result<usize> {
    let idle_since = std::time::Instant::now();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(_) => return Ok(buf.len()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if service.shutdown_requested() || idle_since.elapsed() > IDLE_KEEPALIVE {
                    return Ok(0);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// `Some((method, path))` when the line is an HTTP/1.x request line.
fn http_request_line(line: &str) -> Option<(String, String)> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    (matches!(method, "GET" | "POST" | "PUT" | "HEAD" | "DELETE") && version.starts_with("HTTP/1."))
        .then(|| (method.to_string(), path.to_string()))
}

/// Minimal HTTP/1.1: headers, optional Content-Length body, one response,
/// close. `POST /api` and `GET /metrics` (JSON form) go through the
/// admission scheduler like NDJSON requests; `GET /healthz`,
/// `GET /debug/requests`, and the Prometheus form of `GET /metrics`
/// (selected by an `Accept` header containing `text/plain`) bypass it —
/// monitoring and post-incident debugging must answer even when the
/// queues are saturated.
fn serve_http(
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    scheduler: &Scheduler,
    service: &ExplainService,
    (method, path): (String, String),
) -> std::io::Result<()> {
    // One request then close: a longer blocking timeout is safe here and
    // tolerates bodies arriving in a later packet than the request line.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut content_length = 0usize;
    let mut accept = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("accept") {
                accept = value.trim().to_ascii_lowercase();
            }
        }
    }
    // Reject over-limit bodies explicitly instead of reading a truncated
    // prefix (which would parse as garbage and reset the client mid-send).
    const MAX_BODY: usize = 64 * 1024 * 1024;
    if content_length > MAX_BODY {
        let payload = json::obj([
            ("ok", Json::Bool(false)),
            ("code", json::s("bad_request")),
            (
                "error",
                json::s(format!(
                    "request body {content_length} bytes exceeds {MAX_BODY}"
                )),
            ),
        ])
        .to_string();
        write!(
            writer,
            "HTTP/1.1 413 Payload Too Large\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len(),
        )?;
        return writer.flush();
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body);

    const JSON_TYPE: &str = "application/json";
    /// Prometheus text exposition format version 0.0.4.
    const PROM_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
    let (status, content_type, payload) = match (method.as_str(), path.as_str()) {
        ("POST", "/api") => ("200 OK", JSON_TYPE, scheduler.handle_line(body.trim())),
        // Prometheus scrapes are served from the I/O thread directly:
        // they must work while the queues are full, and a direct scrape
        // does not bump `requests`, keeping the per-command histogram
        // counts exactly equal to the request count in serial smokes.
        ("GET", "/metrics") if accept.contains("text/plain") => {
            ("200 OK", PROM_TYPE, service.metrics_prometheus())
        }
        ("GET", "/metrics") => (
            "200 OK",
            JSON_TYPE,
            scheduler.handle_line(r#"{"cmd":"metrics"}"#),
        ),
        ("GET", "/healthz") => (
            "200 OK",
            JSON_TYPE,
            service.dispatch_line(r#"{"cmd":"ping"}"#),
        ),
        // The flight-recorder dump answers even under overload — it
        // exists to debug exactly those episodes.
        ("GET", "/debug/requests") => (
            "200 OK",
            JSON_TYPE,
            service.dispatch_line(r#"{"cmd":"debug_dump"}"#),
        ),
        _ => (
            "404 Not Found",
            JSON_TYPE,
            json::obj([
                ("ok", Json::Bool(false)),
                ("code", json::s("bad_request")),
                ("error", json::s(format!("no route {method} {path}"))),
            ])
            .to_string(),
        ),
    };
    let sent = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    )
    .and_then(|()| writer.flush());
    if let Err(e) = sent {
        // The write timeout set by `serve_connection` applies here too:
        // a non-reading HTTP peer is a typed disconnect, not a hang.
        service
            .metrics()
            .disconnects
            .fetch_add(1, Ordering::Relaxed);
        return Err(e);
    }
    Ok(())
}
