//! Admission scheduling: classify, enqueue, bound, coalesce.
//!
//! PR 4's server handed each accepted connection to a fixed worker pool —
//! a request then occupied its worker for the whole explain, so four long
//! explains pinned all four workers and a fifth client's `ping` waited
//! seconds for a slot. The [`Scheduler`] decouples *connections* from
//! *work*:
//!
//! 1. every parsed request is **classified** — cheap control commands
//!    (`ping`, `metrics`, `history`, `sessions`, `shutdown`, anything
//!    O(1) over session state) versus **heavy** work (`explain`,
//!    `register`, `register_demo`: O(rows) scans, encodes, pipeline
//!    runs);
//! 2. each class goes into its own bounded FIFO inside one priority
//!    scheduler: a **dedicated control worker** only ever serves the
//!    control queue (so control latency is bounded by the cheap commands
//!    ahead of it, never by an explain), and the `workers` general
//!    workers drain control work first, then heavy work;
//! 3. admission is **bounded**, not best-effort: a full heavy queue is
//!    answered immediately with the typed wire error `overloaded`
//!    (HTTP clients see the same JSON body), and a session with
//!    `session_quota` heavy requests already queued or running gets
//!    `quota_exceeded` — backpressure is explicit, queueing is never
//!    unbounded;
//! 4. identical concurrent `explain`s **coalesce**: a request whose
//!    (session, sql, save_as, top, width) signature matches one already
//!    queued or running attaches to that job instead of enqueueing a
//!    duplicate, and every attached client receives the one computed
//!    response (pipeline determinism makes it byte-identical to what a
//!    private run would have produced). Coalesced followers consume no
//!    queue slot and no quota, and the session records one history
//!    entry for the shared run.
//!
//! Connection I/O threads block on their job's completion, so the wire
//! contract is unchanged: one response line per request line, in order,
//! per connection.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fedex_core::{CancelToken, ExplainError};

use crate::json::{self, Json};
use crate::service::{ExplainService, JobContext};

/// Upper bound of the control queue. Control commands execute in
/// microseconds, so a backlog this deep signals a client flood, not a slow
/// server; beyond it the scheduler answers `overloaded` rather than queue
/// without bound.
const CONTROL_QUEUE_DEPTH: usize = 1024;

/// How long a waiter sleeps between checks of the shutdown flag. The same
/// tick the connection reader uses — a graceful stop is observed within
/// one tick by every blocked thread.
const SHUTDOWN_TICK: Duration = Duration::from_millis(100);

/// The two admission classes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Cheap, O(1)-over-session-state commands; served from the
    /// prioritized control queue, never starved behind explains.
    Control,
    /// O(rows) work: `explain`, `register`, `register_demo`. Bounded
    /// queue, per-session quotas, coalescing.
    Heavy,
}

/// Classify a wire command (see the module docs for the rationale).
pub fn classify(cmd: &str) -> RequestClass {
    match cmd {
        "explain" | "register" | "register_demo" => RequestClass::Heavy,
        _ => RequestClass::Control,
    }
}

/// When the scheduler may downgrade an explain to the FEDEX-Sampling
/// path (§3.7) instead of rejecting or running it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Never degrade: pressure is answered `overloaded`, tight deadlines
    /// run full and expire.
    Off,
    /// Degrade when the heavy queue crosses its pressure watermark, when
    /// the deadline budget can't fit a full explain (estimated from the
    /// last full run), or when the queue would otherwise overflow.
    #[default]
    Auto,
    /// Every explain takes the sampling path (tests and benches).
    Force,
}

impl DegradeMode {
    /// Parse the wire/CLI spelling: `off`, `auto`, or `force`.
    pub fn parse(s: &str) -> Result<DegradeMode, String> {
        match s {
            "off" => Ok(DegradeMode::Off),
            "auto" => Ok(DegradeMode::Auto),
            "force" => Ok(DegradeMode::Force),
            other => Err(format!("unknown degrade mode {other:?} (off|auto|force)")),
        }
    }
}

/// Admission knobs, carried by
/// [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Bound of the heavy queue (queued, not running). A full queue
    /// answers `overloaded` — unless degradation admits the request on
    /// the sampling path (see [`DegradeMode`]).
    pub queue_depth: usize,
    /// Max heavy requests one session may have queued + running; the next
    /// one is answered `quota_exceeded`. Coalesced followers don't count.
    pub session_quota: usize,
    /// Deadline budget stamped on requests that don't carry their own
    /// `deadline_ms` field. `0` means no default deadline.
    pub default_deadline_ms: u64,
    /// Degradation policy (see [`DegradeMode`]).
    pub degrade: DegradeMode,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_depth: 64,
            session_quota: 2,
            default_deadline_ms: 300_000,
            degrade: DegradeMode::Auto,
        }
    }
}

/// Scheduler counters, exported under `"scheduler"` by the `metrics`
/// command. Counter fields are lifetime totals; `*_now` fields are
/// point-in-time gauges.
#[derive(Debug, Default)]
pub struct SchedMetrics {
    /// Control requests admitted to the control queue.
    pub admitted_control: AtomicU64,
    /// Heavy requests admitted to the heavy queue.
    pub admitted_heavy: AtomicU64,
    /// Requests answered `overloaded` (full queue).
    pub rejected_overloaded: AtomicU64,
    /// Requests answered `quota_exceeded`.
    pub rejected_quota: AtomicU64,
    /// Explains that attached to an identical in-flight job.
    pub coalesced: AtomicU64,
    /// Jobs fully served (response delivered).
    pub completed: AtomicU64,
    /// Explains admitted on the degraded (sampling) path.
    pub degraded: AtomicU64,
    /// Heavy jobs whose deadline expired (or whose waiters all left)
    /// before a worker picked them up — answered typed, never dispatched.
    pub expired: AtomicU64,
    /// Waiters that stopped waiting (deadline or disconnect) before their
    /// job's response was published.
    pub detached: AtomicU64,
    /// Control jobs queued right now.
    pub queued_control_now: AtomicU64,
    /// Heavy jobs queued right now.
    pub queued_heavy_now: AtomicU64,
    /// Heavy jobs running right now.
    pub running_heavy_now: AtomicU64,
}

/// One coherent reading of [`SchedMetrics`], shared by the JSON `metrics`
/// command, the Prometheus exposition, and the chaos harness's
/// conservation check.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedSnapshot {
    /// Control requests admitted.
    pub admitted_control: u64,
    /// Heavy requests admitted.
    pub admitted_heavy: u64,
    /// `overloaded` rejections.
    pub rejected_overloaded: u64,
    /// `quota_exceeded` rejections.
    pub rejected_quota: u64,
    /// Coalesced followers.
    pub coalesced: u64,
    /// Jobs fully served.
    pub completed: u64,
    /// Degraded admissions.
    pub degraded: u64,
    /// Jobs expired before dispatch.
    pub expired: u64,
    /// Waiters that left early.
    pub detached: u64,
    /// Control jobs queued right now.
    pub queued_control_now: u64,
    /// Heavy jobs queued right now.
    pub queued_heavy_now: u64,
    /// Heavy jobs running right now.
    pub running_heavy_now: u64,
}

impl SchedMetrics {
    /// Read every counter into one coherent snapshot. Every "effect"
    /// counter (a completion, an expiry) is incremented *after* its
    /// "cause" (the admission), so loading effects first — with `SeqCst`
    /// to pin the load order — guarantees the snapshot never shows
    /// `completed + expired > admitted`, which independent relaxed reads
    /// could.
    pub fn snapshot(&self) -> SchedSnapshot {
        let completed = self.completed.load(Ordering::SeqCst);
        let expired = self.expired.load(Ordering::SeqCst);
        let detached = self.detached.load(Ordering::SeqCst);
        let coalesced = self.coalesced.load(Ordering::SeqCst);
        let degraded = self.degraded.load(Ordering::SeqCst);
        let rejected_overloaded = self.rejected_overloaded.load(Ordering::SeqCst);
        let rejected_quota = self.rejected_quota.load(Ordering::SeqCst);
        let admitted_control = self.admitted_control.load(Ordering::SeqCst);
        let admitted_heavy = self.admitted_heavy.load(Ordering::SeqCst);
        SchedSnapshot {
            admitted_control,
            admitted_heavy,
            rejected_overloaded,
            rejected_quota,
            coalesced,
            completed,
            degraded,
            expired,
            detached,
            queued_control_now: self.queued_control_now.load(Ordering::Relaxed),
            queued_heavy_now: self.queued_heavy_now.load(Ordering::Relaxed),
            running_heavy_now: self.running_heavy_now.load(Ordering::Relaxed),
        }
    }

    /// Snapshot as the JSON object embedded in `metrics` responses.
    pub fn to_json(&self) -> Json {
        let m = self.snapshot();
        let n = |v: u64| json::n(v as f64);
        json::obj([
            ("admitted_control", n(m.admitted_control)),
            ("admitted_heavy", n(m.admitted_heavy)),
            ("rejected_overloaded", n(m.rejected_overloaded)),
            ("rejected_quota", n(m.rejected_quota)),
            ("coalesced", n(m.coalesced)),
            ("completed", n(m.completed)),
            ("degraded", n(m.degraded)),
            ("expired", n(m.expired)),
            ("detached", n(m.detached)),
            ("queued_control", n(m.queued_control_now)),
            ("queued_heavy", n(m.queued_heavy_now)),
            ("running_heavy", n(m.running_heavy_now)),
        ])
    }
}

/// Completion slot shared by a job and every client waiting on it
/// (the submitter plus any coalesced followers).
struct JobState {
    response: Mutex<Option<String>>,
    done: Condvar,
    /// Clients still waiting on the response: the submitter plus every
    /// coalesced follower. When the count hits zero before completion the
    /// last leaver cancels the job — nobody is left to read the result.
    waiters: AtomicUsize,
    /// Cooperative cancellation shared with the pipeline run: carries the
    /// job's deadline, and is tripped when every waiter detaches.
    cancel: CancelToken,
}

impl JobState {
    fn new(cancel: CancelToken) -> Arc<JobState> {
        Arc::new(JobState {
            response: Mutex::new(None),
            done: Condvar::new(),
            waiters: AtomicUsize::new(1),
            cancel,
        })
    }

    fn complete(&self, response: String) {
        *self.response.lock().expect("job state") = Some(response);
        self.done.notify_all();
    }

    /// Join as one more waiter — unless every previous waiter already
    /// left, in which case the job is doomed (its token may be tripped)
    /// and the arrival must start a fresh job instead.
    fn try_attach(&self) -> bool {
        let mut n = self.waiters.load(Ordering::Relaxed);
        loop {
            if n == 0 {
                return false;
            }
            match self
                .waiters
                .compare_exchange_weak(n, n + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(current) => n = current,
            }
        }
    }

    /// Leave without a response. Returns `true` when this was the last
    /// waiter — the caller then cancels the job's token so the pipeline
    /// aborts at its next checkpoint instead of computing for nobody.
    fn detach(&self) -> bool {
        self.waiters.fetch_sub(1, Ordering::Relaxed) == 1
    }
}

/// One admitted unit of work.
struct Job {
    req: Json,
    class: RequestClass,
    /// Session the job charges its quota to (heavy only).
    session: Option<String>,
    /// Coalescing signature (explain only).
    signature: Option<String>,
    /// Run on the FEDEX-Sampling path (see [`DegradeMode`]).
    degraded: bool,
    /// Trace id minted at admission (0 when observability is off).
    trace_id: u64,
    /// When the job entered its queue — the admission-wait clock.
    enqueued: Instant,
    state: Arc<JobState>,
}

#[derive(Default)]
struct SchedInner {
    control: VecDeque<Job>,
    heavy: VecDeque<Job>,
    /// Heavy jobs queued + running, per session — the quota denominator.
    per_session: HashMap<String, usize>,
    /// Explain signature → completion slot of the queued-or-running job
    /// with that signature; arrivals matching a key attach instead of
    /// enqueueing.
    inflight: HashMap<String, Arc<JobState>>,
    /// Per-session catalog generation, bumped whenever a
    /// catalog-mutating request (`register`, `register_demo`, `explain`
    /// with `save_as`) is admitted. Folded into explain signatures so a
    /// request submitted *after* a re-register can never attach to an
    /// in-flight job that read the previous table contents.
    generation: HashMap<String, u64>,
}

/// The admission scheduler: bounded priority queues between connection
/// I/O threads and the worker pool. See the module docs for the model.
pub struct Scheduler {
    service: Arc<ExplainService>,
    inner: Mutex<SchedInner>,
    /// Workers wait here for admitted jobs.
    work: Condvar,
    config: SchedulerConfig,
    metrics: Arc<SchedMetrics>,
    /// Monotonic incident counter for panic responses — stable ids a
    /// client can quote and an operator can grep server logs for.
    incidents: AtomicU64,
}

impl Scheduler {
    /// A scheduler dispatching into `service`; its metrics are attached to
    /// the service so the `metrics` command reports them.
    pub fn new(service: Arc<ExplainService>, config: SchedulerConfig) -> Scheduler {
        let metrics = Arc::new(SchedMetrics::default());
        service.attach_scheduler_metrics(metrics.clone());
        Scheduler {
            service,
            inner: Mutex::new(SchedInner::default()),
            work: Condvar::new(),
            config,
            metrics,
            incidents: AtomicU64::new(0),
        }
    }

    /// The shared counters (for tests; the service exposes them on the
    /// wire).
    pub fn metrics(&self) -> &Arc<SchedMetrics> {
        &self.metrics
    }

    /// Serve one raw request line end to end: parse, admit, wait for a
    /// worker to execute it, return the response line (without trailing
    /// newline). This is what connection threads call; it blocks the
    /// calling I/O thread, never a worker.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_hooked(line, None)
    }

    /// [`Scheduler::handle_line`] with a client-liveness probe: while a
    /// waiter blocks on its job, `is_alive` is polled once per tick, and
    /// a `false` detaches the waiter (last one out cancels the job) — a
    /// closed connection must not pin a coalescing slot or a pipeline
    /// run for a reader that will never arrive.
    pub fn handle_line_hooked(&self, line: &str, is_alive: Option<&dyn Fn() -> bool>) -> String {
        match json::parse(line) {
            // Parse errors never reach the queues — answering them is
            // cheaper than admitting them.
            Err(_) => self.service.dispatch_line(line),
            Ok(req) => self.handle_hooked(req, is_alive),
        }
    }

    /// [`Scheduler::handle_line`] for an already-parsed request.
    pub fn handle(&self, req: Json) -> String {
        self.handle_hooked(req, None)
    }

    /// [`Scheduler::handle_line_hooked`] for an already-parsed request.
    pub fn handle_hooked(&self, req: Json, is_alive: Option<&dyn Fn() -> bool>) -> String {
        match self.submit(req) {
            Ok(state) => self.await_response(&state, is_alive),
            Err(rejection) => rejection,
        }
    }

    /// Admit a request: returns the completion slot to wait on, or the
    /// immediate (typed-error) response for rejected requests.
    fn submit(&self, req: Json) -> Result<Arc<JobState>, String> {
        let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("");
        let class = classify(cmd);
        let session = req
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_string();
        // Deadline budget: per-request `deadline_ms` wins over the server
        // default; an explicit 0 (or any non-positive value) opts out.
        let deadline_ms = match req.get("deadline_ms").and_then(Json::as_f64) {
            Some(ms) if ms.is_finite() && ms > 0.0 => ms as u64,
            Some(_) => 0,
            None => self.config.default_deadline_ms,
        };
        let cancel = match deadline_ms {
            0 => CancelToken::new(),
            ms => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
        };
        // Every request entering admission gets a trace id; rejections,
        // coalesced attaches, and executed jobs all log flight events
        // under it.
        let trace_id = self.service.obs().map_or(0, |o| o.mint_trace().id);

        let mut inner = self.inner.lock().expect("scheduler");
        // Checked under the queue lock: workers observe the flag under
        // this same lock before exiting, so a request admitted here is
        // guaranteed to still have live workers to drain it (see
        // `await_response`).
        if self.service.shutdown_requested() {
            return Err(self.reject_counted(
                "shutting_down",
                "server is shutting down",
                cmd,
                &session,
                trace_id,
            ));
        }
        // Catalog-mutating commands start a new coalescing generation for
        // the session: explains submitted after this point must never
        // share a pipeline run with explains over the previous contents.
        if matches!(cmd, "register" | "register_demo")
            || (cmd == "explain" && req.get("save_as").is_some())
        {
            *inner.generation.entry(session.clone()).or_insert(0) += 1;
        }
        // The degrade decision precedes the signature: a degraded explain
        // renders different output, so it must never coalesce with a full
        // run (and vice versa).
        let degraded = cmd == "explain"
            && match self.config.degrade {
                DegradeMode::Off => false,
                DegradeMode::Force => true,
                DegradeMode::Auto => {
                    let watermark = (self.config.queue_depth / 2).max(1);
                    let pressure = inner.heavy.len() >= watermark;
                    // A cold full explain can't fit the deadline budget:
                    // serve the cheap approximate answer instead of an
                    // expensive one nobody will be around to read.
                    let est = self.service.estimated_explain_micros();
                    let too_tight = est > 0
                        && deadline_ms > 0
                        && Duration::from_millis(deadline_ms) < Duration::from_micros(est);
                    pressure || too_tight
                }
            };
        let signature = (cmd == "explain").then(|| {
            let generation = inner.generation.get(&session).copied().unwrap_or(0);
            explain_signature(&req, &session, generation, degraded)
        });
        match class {
            RequestClass::Control => {
                if inner.control.len() >= CONTROL_QUEUE_DEPTH {
                    self.metrics
                        .rejected_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(self.reject_counted(
                        "overloaded",
                        format!("control queue full ({CONTROL_QUEUE_DEPTH} requests waiting)"),
                        cmd,
                        &session,
                        trace_id,
                    ));
                }
                if let Some(obs) = self.service.obs() {
                    obs.recorder()
                        .push(trace_id, "admit", cmd, &session, "control", "", 0);
                }
                let state = JobState::new(cancel);
                inner.control.push_back(Job {
                    req,
                    class,
                    session: None,
                    signature: None,
                    degraded: false,
                    trace_id,
                    enqueued: Instant::now(),
                    state: state.clone(),
                });
                self.metrics
                    .admitted_control
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .queued_control_now
                    .fetch_add(1, Ordering::Relaxed);
                self.work.notify_all();
                Ok(state)
            }
            RequestClass::Heavy => {
                // Coalesce before any bound is charged: an identical
                // in-flight explain means no new work at all. Attaching
                // can fail when every earlier waiter already detached —
                // that job is doomed (its token may be tripped), so the
                // arrival falls through and starts a fresh run.
                if let Some(sig) = &signature {
                    if let Some(state) = inner.inflight.get(sig) {
                        if state.try_attach() {
                            self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                            if let Some(obs) = self.service.obs() {
                                // Followers consume no queue slot and no
                                // request count; the event is the only
                                // wire-visible mark the attach leaves.
                                obs.recorder()
                                    .push(trace_id, "coalesce", cmd, &session, "", "", 0);
                            }
                            return Ok(state.clone());
                        }
                    }
                }
                let in_session = inner.per_session.get(&session).copied().unwrap_or(0);
                if in_session >= self.config.session_quota {
                    self.metrics.rejected_quota.fetch_add(1, Ordering::Relaxed);
                    return Err(self.reject_counted(
                        "quota_exceeded",
                        format!(
                            "session {session:?} already has {in_session} heavy requests \
                             queued or running (quota {})",
                            self.config.session_quota
                        ),
                        cmd,
                        &session,
                        trace_id,
                    ));
                }
                if inner.heavy.len() >= self.config.queue_depth {
                    // Overflow band: a degraded explain is cheap enough
                    // to admit past the full-run bound — up to twice the
                    // depth — so pressure degrades service instead of
                    // refusing it. Beyond the band, or for non-explain
                    // heavy work, backpressure stays explicit.
                    let overflow_ok =
                        degraded && inner.heavy.len() < self.config.queue_depth.saturating_mul(2);
                    if !overflow_ok {
                        self.metrics
                            .rejected_overloaded
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(self.reject_counted(
                            "overloaded",
                            format!(
                                "explain queue full ({} requests waiting, depth {})",
                                inner.heavy.len(),
                                self.config.queue_depth
                            ),
                            cmd,
                            &session,
                            trace_id,
                        ));
                    }
                }
                if degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(obs) = self.service.obs() {
                    let detail = if degraded { "heavy degraded" } else { "heavy" };
                    obs.recorder()
                        .push(trace_id, "admit", cmd, &session, detail, "", 0);
                }
                let state = JobState::new(cancel);
                *inner.per_session.entry(session.clone()).or_insert(0) += 1;
                if let Some(sig) = &signature {
                    inner.inflight.insert(sig.clone(), state.clone());
                }
                inner.heavy.push_back(Job {
                    req,
                    class,
                    session: Some(session),
                    signature,
                    degraded,
                    trace_id,
                    enqueued: Instant::now(),
                    state: state.clone(),
                });
                self.metrics.admitted_heavy.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .queued_heavy_now
                    .fetch_add(1, Ordering::Relaxed);
                self.work.notify_all();
                Ok(state)
            }
        }
    }

    /// Block until the job completes, the deadline passes, or the client
    /// hangs up. Admission is the commitment point: workers drain both
    /// queues *before* exiting on shutdown, and `submit` observes the
    /// shutdown flag under the same lock workers do, so every admitted
    /// job is eventually executed — but a waiter doesn't have to stay for
    /// it. Deadline expiry and client death *detach* the waiter (counted,
    /// typed); the last waiter out cancels the job's token so the
    /// pipeline aborts at its next checkpoint. Detachment happens while
    /// holding the response lock, so it can never race a concurrent
    /// publish: either the response is already there (delivered), or the
    /// worker publishes after we left (discarded, job already cancelled).
    fn await_response(&self, state: &Arc<JobState>, is_alive: Option<&dyn Fn() -> bool>) -> String {
        let mut slot = state.response.lock().expect("job state");
        loop {
            if let Some(response) = slot.as_ref() {
                return response.clone();
            }
            if state.cancel.deadline_exceeded() {
                if state.detach() {
                    state.cancel.cancel();
                }
                self.metrics.detached.fetch_add(1, Ordering::Relaxed);
                self.service
                    .metrics()
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return reject(
                    "deadline_exceeded",
                    "deadline budget exhausted while waiting for the explain",
                );
            }
            if let Some(alive) = is_alive {
                if !alive() {
                    if state.detach() {
                        state.cancel.cancel();
                    }
                    self.metrics.detached.fetch_add(1, Ordering::Relaxed);
                    self.service
                        .metrics()
                        .cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    // The client is gone; this line is written to a dead
                    // socket (and dropped there), but the typed shape
                    // keeps the path uniform and testable.
                    return reject("cancelled", "client disconnected while waiting");
                }
            }
            // Tick granularity bounds how late a deadline fires: at most
            // one tick past the instant, even if the job never completes.
            let tick = match state.cancel.deadline() {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .min(SHUTDOWN_TICK)
                    .max(Duration::from_millis(1)),
                None => SHUTDOWN_TICK,
            };
            let (guard, _) = state.done.wait_timeout(slot, tick).expect("job state");
            slot = guard;
        }
    }

    /// Build a typed rejection and charge it to the wire-visible server
    /// counters — rejections never reach `ExplainService::dispatch`, so
    /// without this `server.errors` would sit at zero through an entire
    /// overload episode. The request is counted, so its command histogram
    /// records the (zero-duration) observation too — per-command counts
    /// must keep summing to `requests` — and the flight recorder logs the
    /// rejection under the request's trace id.
    fn reject_counted(
        &self,
        code: &'static str,
        message: impl Into<String>,
        cmd: &str,
        session: &str,
        trace_id: u64,
    ) -> String {
        let server = self.service.metrics();
        server.requests.fetch_add(1, Ordering::Relaxed);
        server.errors.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.service.obs() {
            obs.record_command(cmd, Duration::ZERO);
            obs.recorder()
                .push(trace_id, "reject", cmd, session, code, "", 0);
        }
        reject(code, message)
    }

    /// Worker loop. `control_only` is the dedicated control worker that
    /// guarantees cheap commands are served while every general worker is
    /// busy with explains. Returns on shutdown — but only after its
    /// queues are empty (the pops precede the flag check), which is what
    /// lets `await_response` rely on every admitted job completing.
    pub fn worker_loop(&self, control_only: bool) {
        loop {
            let job = {
                let mut inner = self.inner.lock().expect("scheduler");
                loop {
                    if let Some(job) = inner.control.pop_front() {
                        self.metrics
                            .queued_control_now
                            .fetch_sub(1, Ordering::Relaxed);
                        break Some(job);
                    }
                    if !control_only {
                        if let Some(job) = inner.heavy.pop_front() {
                            self.metrics
                                .queued_heavy_now
                                .fetch_sub(1, Ordering::Relaxed);
                            self.metrics
                                .running_heavy_now
                                .fetch_add(1, Ordering::Relaxed);
                            break Some(job);
                        }
                    }
                    if self.service.shutdown_requested() {
                        break None;
                    }
                    let (guard, _) = self
                        .work
                        .wait_timeout(inner, SHUTDOWN_TICK)
                        .expect("scheduler");
                    inner = guard;
                }
            };
            let Some(job) = job else { return };
            self.execute(job);
        }
    }

    /// Run one admitted job and publish its response to every waiter.
    ///
    /// Heavy jobs run under three layers of protection: already-expired
    /// or fully-abandoned jobs are answered typed without burning a
    /// worker; live jobs carry their cancel token into the pipeline; and
    /// the whole dispatch runs under `catch_unwind`, so a panicking
    /// explain yields a typed `internal_error` (with a stable incident
    /// id) instead of killing the worker and leaking the coalescing
    /// slot. Control jobs always execute — they're cheap, and `shutdown`
    /// must never be skipped.
    fn execute(&self, job: Job) {
        let cmd = job.req.get("cmd").and_then(Json::as_str).unwrap_or("other");
        let session = job.session.as_deref().unwrap_or("");
        let heavy = job.class == RequestClass::Heavy;
        let wait = job.enqueued.elapsed();
        if let Some(obs) = self.service.obs() {
            obs.record_admission_wait(heavy, wait);
        }
        let expired = heavy.then(|| job.state.cancel.check().err()).flatten();
        let mut failed = expired.is_some();
        let response = match expired {
            Some(e) => {
                self.metrics.expired.fetch_add(1, Ordering::Relaxed);
                let server = self.service.metrics();
                server.requests.fetch_add(1, Ordering::Relaxed);
                server.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.service.obs() {
                    // Counted as a request without reaching dispatch, so
                    // the command histogram observation lands here.
                    obs.record_command(cmd, Duration::ZERO);
                    obs.recorder().push(
                        job.trace_id,
                        "expired",
                        cmd,
                        session,
                        "",
                        "",
                        wait.as_micros() as u64,
                    );
                }
                match e {
                    ExplainError::Cancelled => {
                        server.cancelled.fetch_add(1, Ordering::Relaxed);
                        reject("cancelled", "explain cancelled: every waiter detached")
                    }
                    _ => {
                        server.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        reject(
                            "deadline_exceeded",
                            "deadline budget exhausted before a worker was free",
                        )
                    }
                }
            }
            None => {
                let jctx = JobContext {
                    degraded: job.degraded,
                    cancel: heavy.then(|| job.state.cancel.clone()),
                    trace_id: (job.trace_id != 0).then_some(job.trace_id),
                    queue_wait_micros: Some(wait.as_micros() as u64),
                    waiters: job.state.waiters.load(Ordering::Relaxed),
                };
                if let Some(obs) = self.service.obs() {
                    obs.recorder()
                        .push(job.trace_id, "dispatch", cmd, session, "", "", 0);
                }
                let t0 = Instant::now();
                let run = catch_unwind(AssertUnwindSafe(|| {
                    self.service.dispatch_job(&job.req, &jctx).to_string()
                }));
                let served = t0.elapsed();
                if let Some(obs) = self.service.obs() {
                    obs.record_service_time(heavy, served);
                }
                match run {
                    Ok(response) => {
                        if let Some(obs) = self.service.obs() {
                            obs.recorder().push(
                                job.trace_id,
                                "finish",
                                cmd,
                                session,
                                "",
                                "",
                                served.as_micros() as u64,
                            );
                        }
                        response
                    }
                    Err(_) => {
                        failed = true;
                        let incident =
                            format!("inc-{:08x}", self.incidents.fetch_add(1, Ordering::Relaxed));
                        let server = self.service.metrics();
                        // `dispatch_job` counted the request before the
                        // panic; only the error needs charging here —
                        // plus the command histogram observation the
                        // unwind skipped.
                        server.panics.fetch_add(1, Ordering::Relaxed);
                        server.errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = self.service.obs() {
                            obs.record_command(cmd, served);
                            obs.recorder().push(
                                job.trace_id,
                                "error",
                                cmd,
                                session,
                                "panic",
                                &incident,
                                served.as_micros() as u64,
                            );
                        }
                        eprintln!(
                            "fedex-serve: worker caught a panic serving {:?} (incident {incident})",
                            job.req.get("cmd").and_then(Json::as_str).unwrap_or("?"),
                        );
                        json::obj([
                            ("ok", Json::Bool(false)),
                            ("code", json::s("internal_error")),
                            (
                                "error",
                                json::s(format!(
                                    "request panicked; server state recovered (incident {incident})"
                                )),
                            ),
                            ("incident", json::s(incident)),
                        ])
                        .to_string()
                    }
                }
            }
        };
        // A panicked or expired job must stop coalescing *before* its
        // response is visible: the stored error describes this run's
        // fate, not the query, and a same-signature arrival that
        // attached after publication would inherit it. Waiters already
        // attached shared the doomed run and correctly see the error.
        if failed {
            if let Some(sig) = &job.signature {
                self.inner.lock().expect("scheduler").inflight.remove(sig);
            }
        }
        job.state.complete(response);
        // Release bookkeeping only after the response is visible: a
        // same-signature arrival in between attaches and immediately
        // finds the stored (deterministic, run-independent) response.
        if job.class == RequestClass::Heavy {
            let mut inner = self.inner.lock().expect("scheduler");
            if let Some(session) = &job.session {
                if let Some(n) = inner.per_session.get_mut(session) {
                    *n -= 1;
                    if *n == 0 {
                        inner.per_session.remove(session);
                    }
                }
            }
            if let Some(sig) = &job.signature {
                // A failed job's entry is already gone (removed above) —
                // and a fresh same-signature run may have re-inserted the
                // key since, so removing again would orphan *that* job.
                if !failed {
                    inner.inflight.remove(sig);
                }
            }
            self.metrics
                .running_heavy_now
                .fetch_sub(1, Ordering::Relaxed);
        }
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The coalescing key of an explain: every field that shapes the
/// response — including `trace`, since a traced response carries a span
/// object an untraced client never asked for — plus the session's
/// catalog generation (so explains across a re-register never share a
/// run) and the degrade decision (a sampled run must never stand in for
/// a full one).
fn explain_signature(req: &Json, session: &str, generation: u64, degraded: bool) -> String {
    let field = |k: &str| {
        req.get(k)
            .map(Json::to_string)
            .unwrap_or_else(|| "~".to_string())
    };
    format!(
        "{session}\u{1}{generation}\u{1}{}\u{1}{}\u{1}{}\u{1}{}\u{1}{}\u{1}{}",
        field("sql"),
        field("save_as"),
        field("top"),
        field("width"),
        field("trace"),
        u8::from(degraded),
    )
}

/// A typed rejection: `{"ok":false,"code":…,"error":…}` as one line.
fn reject(code: &str, message: impl Into<String>) -> String {
    json::obj([
        ("ok", Json::Bool(false)),
        ("code", json::s(code)),
        ("error", json::s(message.into())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        for cmd in ["explain", "register", "register_demo"] {
            assert_eq!(classify(cmd), RequestClass::Heavy, "{cmd}");
        }
        for cmd in ["ping", "metrics", "history", "sessions", "shutdown", "wat"] {
            assert_eq!(classify(cmd), RequestClass::Control, "{cmd}");
        }
    }

    #[test]
    fn signatures_distinguish_response_shaping_fields() {
        let base = json::parse(r#"{"cmd":"explain","sql":"SELECT 1"}"#).unwrap();
        let with_top = json::parse(r#"{"cmd":"explain","sql":"SELECT 1","top":2}"#).unwrap();
        let other_sql = json::parse(r#"{"cmd":"explain","sql":"SELECT 2"}"#).unwrap();
        assert_eq!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&base, "s", 0, false)
        );
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&with_top, "s", 0, false)
        );
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&other_sql, "s", 0, false)
        );
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&base, "t", 0, false),
            "sessions never share history side effects"
        );
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&base, "s", 1, false),
            "a re-register bumps the generation and splits the key"
        );
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&base, "s", 0, true),
            "a degraded run never stands in for a full one"
        );
        let traced = json::parse(r#"{"cmd":"explain","sql":"SELECT 1","trace":true}"#).unwrap();
        assert_ne!(
            explain_signature(&base, "s", 0, false),
            explain_signature(&traced, "s", 0, false),
            "a traced response must never be shared with an untraced client"
        );
    }

    #[test]
    fn snapshots_never_tear_under_concurrent_updates() {
        // Writers increment the cause (`admitted_*`) strictly before the
        // effect (`completed`); a coherent snapshot must therefore never
        // show `completed > admitted_control + admitted_heavy`, no matter
        // when it lands relative to the writers.
        let m = Arc::new(SchedMetrics::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|i| {
                let m = m.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if i == 0 {
                            m.admitted_control.fetch_add(1, Ordering::Relaxed);
                        } else {
                            m.admitted_heavy.fetch_add(1, Ordering::Relaxed);
                        }
                        m.completed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for _ in 0..20_000 {
            let s = m.snapshot();
            assert!(
                s.completed <= s.admitted_control + s.admitted_heavy,
                "torn snapshot: completed {} > admitted {}",
                s.completed,
                s.admitted_control + s.admitted_heavy
            );
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn degrade_mode_parses() {
        assert_eq!(DegradeMode::parse("off").unwrap(), DegradeMode::Off);
        assert_eq!(DegradeMode::parse("auto").unwrap(), DegradeMode::Auto);
        assert_eq!(DegradeMode::parse("force").unwrap(), DegradeMode::Force);
        assert!(DegradeMode::parse("ON").is_err());
    }
}
