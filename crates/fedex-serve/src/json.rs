//! A minimal JSON value, parser, and writer.
//!
//! The build environment has no crates.io access, so `serde_json` cannot
//! be a dependency; this module implements the small subset the wire
//! protocol needs: full RFC 8259 value grammar on parse (objects, arrays,
//! strings with escapes incl. `\uXXXX` surrogate pairs, numbers, literals)
//! and a compact writer. Objects preserve insertion order (a `Vec` of
//! pairs), which keeps responses byte-stable across runs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractions).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as usize)
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value's array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`value.to_string()` via the blanket impl).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Build an object from key/value pairs: `obj([("a", Json::Num(1.0))])`.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// `Json::Str` from anything string-like.
pub fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

/// `Json::Num` from anything numeric.
pub fn n(v: impl Into<f64>) -> Json {
    Json::Num(v.into())
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — the overwhelmingly common case.
                    if b < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // One multi-byte UTF-8 scalar: its length comes from
                    // the leading byte, validation stays O(len).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let v = parse(text).unwrap();
        let again = parse(&v.to_string()).unwrap();
        assert_eq!(v, again, "roundtrip of {text}");
        v
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("-1.5e2"), Json::Num(-150.0));
        assert_eq!(roundtrip("\"a\\nb\""), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = roundtrip(r#"{"a":[1,2,{"b":null}],"c":"x","d":{}}"#);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("d"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair → 😀
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\x01\"", "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn writer_escapes() {
        let v = Json::Str("q\"\\\n\u{1}".into());
        assert_eq!(v.to_string(), "\"q\\\"\\\\\\n\\u0001\"");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = obj([("z", n(1.0)), ("a", n(2.0))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn integers_survive_exactly() {
        let v = roundtrip("9007199254740992"); // 2^53
        assert_eq!(v.as_f64(), Some(9007199254740992.0));
        assert_eq!(Json::Num(123456789.0).to_string(), "123456789");
    }
}
