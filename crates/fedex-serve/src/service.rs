//! Protocol dispatch: one JSON request in, one JSON response out.
//!
//! The service is transport-agnostic — the TCP server (NDJSON and the
//! HTTP fallback), tests, and the CLI all call [`ExplainService::dispatch`]
//! directly. Every request is an object with a `"cmd"` field:
//!
//! | cmd             | fields                                              |
//! |-----------------|-----------------------------------------------------|
//! | `ping`          | —                                                   |
//! | `register`      | `session`, `table`, `columns` (inline data)         |
//! | `register_demo` | `session`, `table?`, `rows?`, `seed?`               |
//! | `explain`       | `session`, `sql`, `save_as?`, `top?`, `width?`      |
//! | `history`       | `session`                                           |
//! | `sessions`      | —                                                   |
//! | `metrics`       | —                                                   |
//! | `shutdown`      | —                                                   |
//!
//! Responses always carry `"ok"`; failures are
//! `{"ok":false,"code":…,"error":…}` with a machine-readable `code`
//! (`invalid_json`, `bad_request`, `unknown_cmd`, `explain_failed`, and —
//! from the admission scheduler — `overloaded`, `quota_exceeded`,
//! `shutting_down`; see [`crate::sched`] and `docs/WIRE_PROTOCOL.md`). A
//! malformed request never tears down the connection, let alone the
//! server. Explain responses embed the per-stage timings and a cumulative
//! artifact-cache snapshot so a client can observe that its warm request
//! skipped the encode work.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use fedex_core::{
    sampling_error_bound, to_json_array, CancelToken, ExplainError, SessionManager, StageReport,
};
use fedex_frame::{Column, DataFrame};

use crate::fault::FaultPlan;
use crate::json::{self, n, obj, s, Json};
use crate::sched::SchedMetrics;

/// Sample size of a degraded (FEDEX-Sampling) explain — the paper's
/// recommended interestingness sample (§3.7).
pub const DEGRADE_SAMPLE_SIZE: usize = 5_000;

/// Wire-visible server counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests dispatched (all commands).
    pub requests: AtomicU64,
    /// Requests answered with `ok:false`.
    pub errors: AtomicU64,
    /// `explain` requests served.
    pub explains: AtomicU64,
    /// Tables registered (`register` + `register_demo`).
    pub registers: AtomicU64,
    /// Connections accepted (maintained by the TCP server).
    pub connections: AtomicU64,
    /// Explains that panicked and were isolated (each produced a typed
    /// `internal_error` response with an incident id).
    pub panics: AtomicU64,
    /// Explains served on the degraded FEDEX-Sampling path.
    pub degraded: AtomicU64,
    /// `deadline_exceeded` responses produced (expired waiters plus
    /// pipeline aborts).
    pub deadline_exceeded: AtomicU64,
    /// `cancelled` responses produced (abandoned runs).
    pub cancelled: AtomicU64,
    /// Response writes that failed or timed out (stalled or gone peers;
    /// maintained by the TCP server).
    pub disconnects: AtomicU64,
}

impl ServerMetrics {
    fn to_json(&self) -> Json {
        obj([
            ("requests", n(self.requests.load(Ordering::Relaxed) as f64)),
            ("errors", n(self.errors.load(Ordering::Relaxed) as f64)),
            ("explains", n(self.explains.load(Ordering::Relaxed) as f64)),
            (
                "registers",
                n(self.registers.load(Ordering::Relaxed) as f64),
            ),
            (
                "connections",
                n(self.connections.load(Ordering::Relaxed) as f64),
            ),
            ("panics", n(self.panics.load(Ordering::Relaxed) as f64)),
            ("degraded", n(self.degraded.load(Ordering::Relaxed) as f64)),
            (
                "deadline_exceeded",
                n(self.deadline_exceeded.load(Ordering::Relaxed) as f64),
            ),
            (
                "cancelled",
                n(self.cancelled.load(Ordering::Relaxed) as f64),
            ),
            (
                "disconnects",
                n(self.disconnects.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// Per-job execution context the scheduler attaches to a dispatch: the
/// degradation decision and the cancellation token waiters share.
#[derive(Debug, Clone, Default)]
pub struct JobContext {
    /// Serve this explain on the FEDEX-Sampling path and mark the
    /// response `"degraded": true` with its error bound.
    pub degraded: bool,
    /// Cooperative cancellation handle (deadline and/or abandoned-run
    /// flag) checked by the pipeline at work-unit boundaries.
    pub cancel: Option<CancelToken>,
}

/// The shared request handler: a [`SessionManager`] plus server state.
#[derive(Debug, Default)]
pub struct ExplainService {
    manager: SessionManager,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    scheduler: OnceLock<Arc<SchedMetrics>>,
    /// Active fault-injection plan (chaos harness only; `None` in
    /// production).
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Wall-clock of the latest full (non-degraded) explain pipeline, in
    /// microseconds — the scheduler's estimate for "is this deadline
    /// budget plausibly enough for a full run?".
    est_explain_micros: AtomicU64,
}

/// Cumulative artifact-cache snapshot as a JSON object.
fn cache_json(manager: &SessionManager) -> Json {
    let m = manager.cache().metrics();
    obj([
        ("hits", n(m.hits as f64)),
        ("misses", n(m.misses as f64)),
        ("evictions", n(m.evictions as f64)),
        ("rejected", n(m.rejected as f64)),
        ("entries", n(m.entries as f64)),
        ("bytes", n(m.bytes as f64)),
        ("budget", n(m.budget as f64)),
        ("policy", s(m.policy.as_str())),
    ])
}

fn trace_json(trace: &[StageReport]) -> Json {
    Json::Arr(
        trace
            .iter()
            .map(|r| {
                obj([
                    ("stage", s(r.stage)),
                    ("micros", n(r.elapsed.as_micros() as f64)),
                    ("items", n(r.items as f64)),
                    (
                        "sub",
                        Json::Arr(
                            r.sub
                                .iter()
                                .map(|(name, d)| {
                                    obj([("name", s(*name)), ("micros", n(d.as_micros() as f64))])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// A typed error response: machine-readable `code` + human `error`.
fn err(code: &'static str, message: impl Into<String>) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("code", s(code)),
        ("error", s(message.into())),
    ])
}

fn ok(mut fields: Vec<(&'static str, Json)>) -> Json {
    fields.insert(0, ("ok", Json::Bool(true)));
    obj(fields)
}

/// Decode one uploaded column: `{"name":…,"type":…,"values":[…]}`.
fn parse_column(spec: &Json) -> Result<Column, String> {
    let name = spec
        .get("name")
        .and_then(Json::as_str)
        .ok_or("column needs a string 'name'")?;
    let dtype = spec
        .get("type")
        .and_then(Json::as_str)
        .ok_or("column needs a 'type' of int|float|str|bool")?;
    let values = spec
        .get("values")
        .and_then(Json::as_arr)
        .ok_or("column needs a 'values' array")?;
    let bad = |i: usize| format!("column {name:?}: value {i} does not match type {dtype:?}");
    match dtype {
        "int" => {
            // JSON numbers arrive as f64, which is exact only to 2⁵³;
            // larger "integers" would be silently rounded, so reject them
            // rather than register corrupted cells.
            const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Num(x) if x.fract() == 0.0 && x.abs() <= EXACT => Some(*x as i64),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_ints(name, out))
        }
        "float" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Num(x) => Some(*x),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_floats(name, out))
        }
        "str" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Str(x) => Some(x.clone()),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_strs(name, out))
        }
        "bool" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Bool(b) => Some(*b),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::new(name, fedex_frame::ColumnData::Bool(out)))
        }
        other => Err(format!("unknown column type {other:?}")),
    }
}

impl ExplainService {
    /// A service over an existing manager (shared cache, config).
    pub fn new(manager: SessionManager) -> Self {
        ExplainService {
            manager,
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            scheduler: OnceLock::new(),
            faults: RwLock::new(None),
            est_explain_micros: AtomicU64::new(0),
        }
    }

    /// Install (or clear) a fault-injection plan. Chaos harness only.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.write().unwrap_or_else(PoisonError::into_inner) = plan;
    }

    /// The active fault-injection plan, if any.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Microseconds the latest full (non-degraded) explain pipeline took;
    /// 0 until one completes. The scheduler compares deadline budgets
    /// against this to decide degradation.
    pub fn estimated_explain_micros(&self) -> u64 {
        self.est_explain_micros.load(Ordering::Relaxed)
    }

    /// Attach the admission scheduler's counters so the `metrics` command
    /// reports them; called once by [`crate::sched::Scheduler::new`].
    pub fn attach_scheduler_metrics(&self, metrics: Arc<SchedMetrics>) {
        let _ = self.scheduler.set(metrics);
    }

    /// The underlying session manager.
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The server-side counters (the TCP server bumps `connections`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// True once a `shutdown` request was served (or
    /// [`ExplainService::request_shutdown`] was called in-process).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the server loops to wind down — the in-process equivalent of a
    /// wire `shutdown` request. Idle workers observe the flag within their
    /// read-timeout tick, so a graceful stop never depends on a free
    /// worker slot.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Dispatch one already-parsed request.
    pub fn dispatch(&self, req: &Json) -> Json {
        self.dispatch_job(req, &JobContext::default())
    }

    /// [`ExplainService::dispatch`] under a scheduler-provided
    /// [`JobContext`] (degradation decision + cancellation token).
    pub fn dispatch_job(&self, req: &Json, job: &JobContext) -> Json {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let response = self.dispatch_inner(req, job);
        if response.get("ok") == Some(&Json::Bool(false)) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Dispatch one NDJSON line; the response is a single line without the
    /// trailing newline.
    pub fn dispatch_line(&self, line: &str) -> String {
        let response = match json::parse(line) {
            Ok(req) => self.dispatch(&req),
            Err(e) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                err("invalid_json", format!("invalid JSON: {e}"))
            }
        };
        response.to_string()
    }

    fn dispatch_inner(&self, req: &Json, job: &JobContext) -> Json {
        let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
            return err("bad_request", "request needs a string 'cmd'");
        };
        let session = req
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or("default");
        match cmd {
            "ping" => ok(vec![("pong", Json::Bool(true))]),
            "register" => self.register(req, session),
            "register_demo" => self.register_demo(req, session),
            "explain" => self.explain(req, session, job),
            "history" => self.history(session),
            "sessions" => ok(vec![(
                "sessions",
                Json::Arr(
                    self.manager
                        .session_names()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            )]),
            "metrics" => {
                let mut fields = vec![
                    ("server", self.metrics.to_json()),
                    ("cache", cache_json(&self.manager)),
                ];
                if let Some(sched) = self.scheduler.get() {
                    fields.push(("scheduler", sched.to_json()));
                }
                ok(fields)
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                ok(vec![("shutting_down", Json::Bool(true))])
            }
            other => err("unknown_cmd", format!("unknown cmd {other:?}")),
        }
    }

    fn register(&self, req: &Json, session: &str) -> Json {
        let Some(table) = req.get("table").and_then(Json::as_str) else {
            return err("bad_request", "register needs a string 'table'");
        };
        let Some(specs) = req.get("columns").and_then(Json::as_arr) else {
            return err("bad_request", "register needs a 'columns' array");
        };
        let mut columns = Vec::with_capacity(specs.len());
        for spec in specs {
            match parse_column(spec) {
                Ok(c) => columns.push(c),
                Err(e) => return err("bad_request", e),
            }
        }
        let df = match DataFrame::new(columns) {
            Ok(df) => df,
            Err(e) => return err("bad_request", format!("invalid table: {e}")),
        };
        self.finish_register(session, table, df)
    }

    fn register_demo(&self, req: &Json, session: &str) -> Json {
        let table = req.get("table").and_then(Json::as_str).unwrap_or("spotify");
        let rows = req
            .get("rows")
            .and_then(Json::as_usize)
            .unwrap_or(10_000)
            .clamp(1, 5_000_000);
        let seed = req.get("seed").and_then(Json::as_usize).unwrap_or(42) as u64;
        let df = fedex_data::spotify::generate(rows, seed);
        self.finish_register(session, table, df)
    }

    fn finish_register(&self, session: &str, table: &str, df: DataFrame) -> Json {
        self.metrics.registers.fetch_add(1, Ordering::Relaxed);
        let rows = df.n_rows();
        let cols = df.n_cols();
        // The manager computes (and the frame memoizes) the content
        // digest here, once — every later explain over this table reads
        // it in O(1) instead of re-scanning 15 columns × n rows.
        let fp = self.manager.register(session, table, df);
        ok(vec![
            ("session", s(session)),
            ("table", s(table)),
            ("rows", n(rows as f64)),
            ("columns", n(cols as f64)),
            ("fingerprint", s(fp.to_hex())),
        ])
    }

    fn explain(&self, req: &Json, session: &str, job: &JobContext) -> Json {
        let Some(sql) = req.get("sql").and_then(Json::as_str) else {
            return err("bad_request", "explain needs a string 'sql'");
        };
        let save_as = req.get("save_as").and_then(Json::as_str);
        let width = req.get("width").and_then(Json::as_usize).unwrap_or(44);
        let top = req.get("top").and_then(Json::as_usize);
        self.metrics.explains.fetch_add(1, Ordering::Relaxed);
        let faults = self.faults();
        let degraded = job.degraded;
        let cancel = job.cancel.clone();
        // Summarize in place (`run_traced_configured_with`): a
        // SessionEntry owns the full input/output dataframes, which must
        // not be deep-cloned per wire request.
        let response = self.manager.run_traced_configured_with(
            session,
            sql,
            save_as,
            |config| {
                // Fault hooks fire here, inside the session write lock,
                // so an injected panic exercises the same poisoned-lock
                // recovery a real pipeline bug would.
                if let Some(plan) = &faults {
                    plan.inject_stage_delay();
                    if plan.should_panic() {
                        panic!("injected fault: panic mid-explain");
                    }
                }
                if degraded {
                    config.sample_size = Some(DEGRADE_SAMPLE_SIZE);
                }
                config.cancel = cancel;
            },
            |entry, trace| {
                // `top` trims the *response* — the ranked prefix is exactly
                // what `top_k_explanations` would have kept; history stays
                // complete.
                let shown = match top {
                    Some(k) => &entry.explanations[..k.min(entry.explanations.len())],
                    None => &entry.explanations[..],
                };
                let explanations = json::parse(&to_json_array(shown))
                    .expect("explanation serialization is valid JSON");
                let rendered = fedex_core::render_all(shown, width);
                let encode_micros = trace
                    .iter()
                    .find(|r| r.stage == "ScoreColumns")
                    .and_then(|r| r.sub.iter().find(|(name, _)| *name == "encode"))
                    .map_or(0.0, |(_, d)| d.as_micros() as f64);
                let total_micros: u64 = trace.iter().map(|r| r.elapsed.as_micros() as u64).sum();
                let mut fields = vec![
                    ("session", s(session)),
                    ("sql", s(sql)),
                    ("n_rows_in", n(entry.step.inputs[0].n_rows() as f64)),
                    ("n_rows_out", n(entry.step.output.n_rows() as f64)),
                    ("explanations", explanations),
                    ("rendered", s(rendered)),
                    ("stage_trace", trace_json(trace)),
                    ("encode_micros", n(encode_micros)),
                ];
                if degraded {
                    // The accuracy the client traded for latency: a 95%
                    // DKW bound on the sampled interestingness scores.
                    fields.push(("degraded", Json::Bool(true)));
                    fields.push(("sample_size", n(DEGRADE_SAMPLE_SIZE as f64)));
                    fields.push(("error_bound", n(sampling_error_bound(DEGRADE_SAMPLE_SIZE))));
                }
                (ok(fields), total_micros)
            },
        );
        match response {
            Ok((Json::Obj(mut fields), total_micros)) => {
                if degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Full runs refresh the cold-run cost estimate the
                    // scheduler uses for deadline-driven degradation.
                    self.est_explain_micros
                        .store(total_micros, Ordering::Relaxed);
                }
                // The cache snapshot is taken after the run, outside the
                // session lock.
                fields.push(("cache".to_string(), cache_json(&self.manager)));
                Json::Obj(fields)
            }
            Ok((other, _)) => other,
            Err(ExplainError::DeadlineExceeded) => {
                self.metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                err(
                    "deadline_exceeded",
                    "deadline budget exhausted before the explain completed",
                )
            }
            Err(ExplainError::Cancelled) => {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                err("cancelled", "explain cancelled: every waiter detached")
            }
            Err(e) => err("explain_failed", format!("explain failed: {e}")),
        }
    }

    fn history(&self, session: &str) -> Json {
        // Summaries only — never clone the entries' dataframes.
        let entries = self.manager.history_with(session, |entries| {
            entries
                .iter()
                .map(|e| {
                    obj([
                        ("sql", s(e.sql.clone())),
                        ("saved_as", e.saved_as.clone().map_or(Json::Null, Json::Str)),
                        ("n_explanations", n(e.explanations.len() as f64)),
                        ("n_rows_out", n(e.step.output.n_rows() as f64)),
                    ])
                })
                .collect::<Vec<_>>()
        });
        ok(vec![
            ("session", s(session)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register_req() -> Json {
        json::parse(
            r#"{"cmd":"register","session":"s1","table":"songs","columns":[
                {"name":"popularity","type":"int","values":[80,20,75,10,90,15,85,25]},
                {"name":"decade","type":"str","values":["2010s","1970s","2010s","1970s","2010s","1980s","2010s","1970s"]}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn ping_and_unknown() {
        let svc = ExplainService::default();
        let r = svc.dispatch(&json::parse(r#"{"cmd":"ping"}"#).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let r = svc.dispatch(&json::parse(r#"{"cmd":"frobnicate"}"#).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(svc.metrics().errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn register_then_explain_roundtrip() {
        let svc = ExplainService::default();
        let r = svc.dispatch(&register_req());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert_eq!(r.get("rows").and_then(Json::as_f64), Some(8.0));
        assert_eq!(
            r.get("fingerprint").and_then(Json::as_str).map(str::len),
            Some(32)
        );

        let req = json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM songs WHERE popularity > 65"}"#,
        )
        .unwrap();
        let r = svc.dispatch(&req);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert_eq!(r.get("n_rows_out").and_then(Json::as_f64), Some(4.0));
        assert!(!r.get("explanations").unwrap().as_arr().unwrap().is_empty());
        assert!(r
            .get("rendered")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Explanation 1"));
        // Second, identical request: the cache reports hits.
        let r2 = svc.dispatch(&req);
        let hits = r2
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(hits > 0.0, "warm request must report cache hits");

        let h = svc.dispatch(&json::parse(r#"{"cmd":"history","session":"s1"}"#).unwrap());
        assert_eq!(h.get("entries").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn explain_errors_are_responses() {
        let svc = ExplainService::default();
        let r = svc.dispatch(
            &json::parse(r#"{"cmd":"explain","session":"s1","sql":"SELEKT nope"}"#).unwrap(),
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert!(r.get("error").and_then(Json::as_str).is_some());
    }

    #[test]
    fn register_demo_and_metrics() {
        let svc = ExplainService::default();
        let r = svc.dispatch(
            &json::parse(r#"{"cmd":"register_demo","session":"d","rows":500,"seed":7}"#).unwrap(),
        );
        assert_eq!(r.get("rows").and_then(Json::as_f64), Some(500.0));
        let m = svc.dispatch(&json::parse(r#"{"cmd":"metrics"}"#).unwrap());
        assert_eq!(
            m.get("server")
                .and_then(|x| x.get("registers"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(m.get("cache").and_then(|c| c.get("budget")).is_some());
    }

    #[test]
    fn bad_column_uploads_are_rejected() {
        let svc = ExplainService::default();
        for bad in [
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"int","values":[1.5]}]}"#,
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"wat","values":[]}]}"#,
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"int","values":[1]},{"name":"y","type":"int","values":[1,2]}]}"#,
            r#"{"cmd":"register","table":"t"}"#,
        ] {
            let r = svc.dispatch(&json::parse(bad).unwrap());
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
    }

    #[test]
    fn dispatch_line_survives_garbage() {
        let svc = ExplainService::default();
        let out = svc.dispatch_line("{not json");
        assert!(out.contains("\"ok\":false"));
        let out = svc.dispatch_line(r#"{"cmd":"ping"}"#);
        assert!(out.contains("\"pong\":true"));
    }

    #[test]
    fn shutdown_sets_flag() {
        let svc = ExplainService::default();
        assert!(!svc.shutdown_requested());
        svc.dispatch(&json::parse(r#"{"cmd":"shutdown"}"#).unwrap());
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn save_as_chains_in_session() {
        let svc = ExplainService::default();
        svc.dispatch(&register_req());
        let r = svc.dispatch(&json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM songs WHERE popularity > 65","save_as":"popular"}"#,
        ).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        let r = svc.dispatch(&json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM popular WHERE popularity > 80"}"#,
        ).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
}
