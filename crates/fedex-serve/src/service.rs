//! Protocol dispatch: one JSON request in, one JSON response out.
//!
//! The service is transport-agnostic — the TCP server (NDJSON and the
//! HTTP fallback), tests, and the CLI all call [`ExplainService::dispatch`]
//! directly. Every request is an object with a `"cmd"` field:
//!
//! | cmd             | fields                                              |
//! |-----------------|-----------------------------------------------------|
//! | `ping`          | —                                                   |
//! | `register`      | `session`, `table`, `columns` (inline data)         |
//! | `register_demo` | `session`, `dataset?`, `table?`, `rows?`, `seed?`, `product_rows?` |
//! | `explain`       | `session`, `sql`, `save_as?`, `top?`, `width?`, `trace?` |
//! | `history`       | `session`                                           |
//! | `sessions`      | —                                                   |
//! | `metrics`       | —                                                   |
//! | `debug_dump`    | `incident?`, `trace_id?`, `limit?`                  |
//! | `shutdown`      | —                                                   |
//!
//! Responses always carry `"ok"`; failures are
//! `{"ok":false,"code":…,"error":…}` with a machine-readable `code`
//! (`invalid_json`, `bad_request`, `unknown_cmd`, `explain_failed`, and —
//! from the admission scheduler — `overloaded`, `quota_exceeded`,
//! `shutting_down`; see [`crate::sched`] and `docs/WIRE_PROTOCOL.md`). A
//! malformed request never tears down the connection, let alone the
//! server. Explain responses embed the per-stage timings and a cumulative
//! artifact-cache snapshot so a client can observe that its warm request
//! skipped the encode work.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use fedex_core::{
    sampling_error_bound, to_json_array, CancelToken, ExplainError, SessionManager, StageReport,
};
use fedex_frame::{Column, DataFrame};
use fedex_obs::{parse_trace_id, trace_id_str, HistSnapshot, Obs, PromWriter};

use crate::fault::FaultPlan;
use crate::json::{self, n, obj, s, Json};
use crate::sched::SchedMetrics;

/// Sample size of a degraded (FEDEX-Sampling) explain — the paper's
/// recommended interestingness sample (§3.7).
pub const DEGRADE_SAMPLE_SIZE: usize = 5_000;

/// Wire-visible server counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests dispatched (all commands).
    pub requests: AtomicU64,
    /// Requests answered with `ok:false`.
    pub errors: AtomicU64,
    /// `explain` requests served.
    pub explains: AtomicU64,
    /// Tables registered (`register` + `register_demo`).
    pub registers: AtomicU64,
    /// Connections accepted (maintained by the TCP server).
    pub connections: AtomicU64,
    /// Explains that panicked and were isolated (each produced a typed
    /// `internal_error` response with an incident id).
    pub panics: AtomicU64,
    /// Explains served on the degraded FEDEX-Sampling path.
    pub degraded: AtomicU64,
    /// `deadline_exceeded` responses produced (expired waiters plus
    /// pipeline aborts).
    pub deadline_exceeded: AtomicU64,
    /// `cancelled` responses produced (abandoned runs).
    pub cancelled: AtomicU64,
    /// Response writes that failed or timed out (stalled or gone peers;
    /// maintained by the TCP server).
    pub disconnects: AtomicU64,
}

/// One coherent reading of [`ServerMetrics`], used by the JSON `metrics`
/// command, the Prometheus exposition, and the chaos harness alike.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerSnapshot {
    /// Requests dispatched (all commands).
    pub requests: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// `explain` requests served.
    pub explains: u64,
    /// Tables registered.
    pub registers: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Isolated panics.
    pub panics: u64,
    /// Degraded explains.
    pub degraded: u64,
    /// `deadline_exceeded` responses.
    pub deadline_exceeded: u64,
    /// `cancelled` responses.
    pub cancelled: u64,
    /// Failed/timed-out response writes.
    pub disconnects: u64,
}

impl ServerMetrics {
    /// Read every counter into one coherent snapshot. The counters are
    /// monotonic and every "effect" counter is incremented *after* its
    /// "cause" (an error is counted after its request, an explain after
    /// its request, a panic before its error), so loading effects first
    /// — with `SeqCst` to pin the load order — guarantees the snapshot
    /// never shows `errors > requests` or `explains > requests`, which
    /// the previous per-field `to_json` reads could.
    pub fn snapshot(&self) -> ServerSnapshot {
        let degraded = self.degraded.load(Ordering::SeqCst);
        let panics = self.panics.load(Ordering::SeqCst);
        let deadline_exceeded = self.deadline_exceeded.load(Ordering::SeqCst);
        let cancelled = self.cancelled.load(Ordering::SeqCst);
        let disconnects = self.disconnects.load(Ordering::SeqCst);
        let registers = self.registers.load(Ordering::SeqCst);
        let explains = self.explains.load(Ordering::SeqCst);
        let errors = self.errors.load(Ordering::SeqCst);
        let requests = self.requests.load(Ordering::SeqCst);
        let connections = self.connections.load(Ordering::SeqCst);
        ServerSnapshot {
            requests,
            errors,
            explains,
            registers,
            connections,
            panics,
            degraded,
            deadline_exceeded,
            cancelled,
            disconnects,
        }
    }

    fn to_json(&self) -> Json {
        let m = self.snapshot();
        obj([
            ("requests", n(m.requests as f64)),
            ("errors", n(m.errors as f64)),
            ("explains", n(m.explains as f64)),
            ("registers", n(m.registers as f64)),
            ("connections", n(m.connections as f64)),
            ("panics", n(m.panics as f64)),
            ("degraded", n(m.degraded as f64)),
            ("deadline_exceeded", n(m.deadline_exceeded as f64)),
            ("cancelled", n(m.cancelled as f64)),
            ("disconnects", n(m.disconnects as f64)),
        ])
    }
}

/// Per-job execution context the scheduler attaches to a dispatch: the
/// degradation decision and the cancellation token waiters share.
#[derive(Debug, Clone, Default)]
pub struct JobContext {
    /// Serve this explain on the FEDEX-Sampling path and mark the
    /// response `"degraded": true` with its error bound.
    pub degraded: bool,
    /// Cooperative cancellation handle (deadline and/or abandoned-run
    /// flag) checked by the pipeline at work-unit boundaries.
    pub cancel: Option<CancelToken>,
    /// Request trace id minted at admission (`None` for direct
    /// dispatches, which mint their own lazily).
    pub trace_id: Option<u64>,
    /// Microseconds the job waited in its admission queue before a
    /// worker picked it up.
    pub queue_wait_micros: Option<u64>,
    /// Clients attached to the job at dispatch (submitter + coalesced
    /// followers); `> 1` marks the run as coalesced in traces.
    pub waiters: usize,
}

/// The shared request handler: a [`SessionManager`] plus server state.
#[derive(Debug)]
pub struct ExplainService {
    manager: SessionManager,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    scheduler: OnceLock<Arc<SchedMetrics>>,
    /// Active fault-injection plan (chaos harness only; `None` in
    /// production).
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Wall-clock of the latest full (non-degraded) explain pipeline, in
    /// microseconds — the scheduler's estimate for "is this deadline
    /// budget plausibly enough for a full run?".
    est_explain_micros: AtomicU64,
    /// Latency histograms, tracing, and the flight recorder. On by
    /// default; `None` only under `--no-obs` (overhead measurement).
    obs: Option<Arc<Obs>>,
    /// Slow-explain log threshold in milliseconds (0 = off): explains
    /// slower than this print their trace id + stage breakdown to
    /// stderr.
    slow_explain_ms: AtomicU64,
}

impl Default for ExplainService {
    fn default() -> Self {
        ExplainService::new(SessionManager::default())
    }
}

/// Cumulative artifact-cache snapshot as a JSON object.
fn cache_json(manager: &SessionManager) -> Json {
    let m = manager.cache().metrics();
    obj([
        ("hits", n(m.hits as f64)),
        ("misses", n(m.misses as f64)),
        ("evictions", n(m.evictions as f64)),
        ("rejected", n(m.rejected as f64)),
        ("entries", n(m.entries as f64)),
        ("bytes", n(m.bytes as f64)),
        ("budget", n(m.budget as f64)),
        ("policy", s(m.policy.as_str())),
    ])
}

fn trace_json(trace: &[StageReport]) -> Json {
    Json::Arr(
        trace
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("stage", s(r.stage)),
                    ("micros", n(r.elapsed.as_micros() as f64)),
                    ("items", n(r.items as f64)),
                    (
                        "sub",
                        Json::Arr(
                            r.sub
                                .iter()
                                .map(|(name, d)| {
                                    obj([("name", s(*name)), ("micros", n(d.as_micros() as f64))])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if !r.artifacts.is_empty() {
                    // Cache consultations of the stage: which artifacts
                    // (input frames, kernel caches) were warm.
                    fields.push((
                        "cache",
                        Json::Arr(
                            r.artifacts
                                .iter()
                                .map(|(artifact, hit)| {
                                    obj([
                                        ("artifact", s(artifact.clone())),
                                        ("hit", Json::Bool(*hit)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                obj(fields)
            })
            .collect(),
    )
}

/// Percentile summary of one histogram snapshot (microsecond units).
fn hist_json(snap: &HistSnapshot) -> Json {
    obj([
        ("count", n(snap.count as f64)),
        ("p50_us", n(snap.p50() as f64)),
        ("p90_us", n(snap.p90() as f64)),
        ("p99_us", n(snap.p99() as f64)),
        ("max_us", n(snap.max as f64)),
        ("sum_us", n(snap.sum as f64)),
    ])
}

/// The `"latency"` object of the `metrics` command: per-command,
/// per-queue, and per-stage percentile summaries (non-empty series
/// only).
fn latency_json(obs: &Obs) -> Json {
    let series = |snaps: Vec<(&'static str, HistSnapshot)>| {
        Json::Obj(
            snaps
                .into_iter()
                .filter(|(_, snap)| snap.count > 0)
                .map(|(name, snap)| (name.to_string(), hist_json(&snap)))
                .collect(),
        )
    };
    obj([
        ("commands", series(obs.command_snapshots())),
        ("admission_wait", series(obs.admission_wait_snapshots())),
        ("service_time", series(obs.service_time_snapshots())),
        ("stages", series(obs.stage_snapshots())),
    ])
}

/// One flight-recorder event as wire JSON.
fn event_json(ev: &fedex_obs::Event) -> Json {
    let mut fields = vec![
        ("seq", n(ev.seq as f64)),
        ("at_micros", n(ev.at_micros as f64)),
        (
            "trace_id",
            if ev.trace_id == 0 {
                Json::Null
            } else {
                s(trace_id_str(ev.trace_id))
            },
        ),
        ("kind", s(ev.kind)),
        ("cmd", s(ev.cmd.clone())),
        ("session", s(ev.session.clone())),
    ];
    if !ev.detail.is_empty() {
        fields.push(("detail", s(ev.detail.clone())));
    }
    if !ev.incident.is_empty() {
        fields.push(("incident", s(ev.incident.clone())));
    }
    if ev.micros > 0 {
        fields.push(("micros", n(ev.micros as f64)));
    }
    obj(fields)
}

/// A typed error response: machine-readable `code` + human `error`.
fn err(code: &'static str, message: impl Into<String>) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("code", s(code)),
        ("error", s(message.into())),
    ])
}

fn ok(mut fields: Vec<(&'static str, Json)>) -> Json {
    fields.insert(0, ("ok", Json::Bool(true)));
    obj(fields)
}

/// Decode one uploaded column: `{"name":…,"type":…,"values":[…]}`.
fn parse_column(spec: &Json) -> Result<Column, String> {
    let name = spec
        .get("name")
        .and_then(Json::as_str)
        .ok_or("column needs a string 'name'")?;
    let dtype = spec
        .get("type")
        .and_then(Json::as_str)
        .ok_or("column needs a 'type' of int|float|str|bool")?;
    let values = spec
        .get("values")
        .and_then(Json::as_arr)
        .ok_or("column needs a 'values' array")?;
    let bad = |i: usize| format!("column {name:?}: value {i} does not match type {dtype:?}");
    match dtype {
        "int" => {
            // JSON numbers arrive as f64, which is exact only to 2⁵³;
            // larger "integers" would be silently rounded, so reject them
            // rather than register corrupted cells.
            const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Num(x) if x.fract() == 0.0 && x.abs() <= EXACT => Some(*x as i64),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_ints(name, out))
        }
        "float" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Num(x) => Some(*x),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_floats(name, out))
        }
        "str" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Str(x) => Some(x.clone()),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::from_opt_strs(name, out))
        }
        "bool" => {
            let mut out = Vec::with_capacity(values.len());
            for (i, v) in values.iter().enumerate() {
                out.push(match v {
                    Json::Null => None,
                    Json::Bool(b) => Some(*b),
                    _ => return Err(bad(i)),
                });
            }
            Ok(Column::new(name, fedex_frame::ColumnData::Bool(out)))
        }
        other => Err(format!("unknown column type {other:?}")),
    }
}

impl ExplainService {
    /// A service over an existing manager (shared cache, config), with
    /// observability on.
    pub fn new(manager: SessionManager) -> Self {
        ExplainService::with_obs(manager, Some(Arc::new(Obs::new())))
    }

    /// [`ExplainService::new`] with an explicit observability hub —
    /// `None` disables histograms, tracing, and the flight recorder
    /// (used by `serve_bench --no-obs` to measure instrumentation
    /// overhead).
    pub fn with_obs(manager: SessionManager, obs: Option<Arc<Obs>>) -> Self {
        ExplainService {
            manager,
            metrics: ServerMetrics::default(),
            shutdown: AtomicBool::new(false),
            scheduler: OnceLock::new(),
            faults: RwLock::new(None),
            est_explain_micros: AtomicU64::new(0),
            obs,
            slow_explain_ms: AtomicU64::new(0),
        }
    }

    /// The observability hub, if enabled.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Set the slow-explain log threshold (milliseconds; 0 disables).
    pub fn set_slow_explain_ms(&self, ms: u64) {
        self.slow_explain_ms.store(ms, Ordering::Relaxed);
    }

    /// Install (or clear) a fault-injection plan. Chaos harness only.
    pub fn set_faults(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.write().unwrap_or_else(PoisonError::into_inner) = plan;
    }

    /// The active fault-injection plan, if any.
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Microseconds the latest full (non-degraded) explain pipeline took;
    /// 0 until one completes. The scheduler compares deadline budgets
    /// against this to decide degradation.
    pub fn estimated_explain_micros(&self) -> u64 {
        self.est_explain_micros.load(Ordering::Relaxed)
    }

    /// Attach the admission scheduler's counters so the `metrics` command
    /// reports them; called once by [`crate::sched::Scheduler::new`].
    pub fn attach_scheduler_metrics(&self, metrics: Arc<SchedMetrics>) {
        let _ = self.scheduler.set(metrics);
    }

    /// The underlying session manager.
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// The server-side counters (the TCP server bumps `connections`).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// True once a `shutdown` request was served (or
    /// [`ExplainService::request_shutdown`] was called in-process).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the server loops to wind down — the in-process equivalent of a
    /// wire `shutdown` request. Idle workers observe the flag within their
    /// read-timeout tick, so a graceful stop never depends on a free
    /// worker slot.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Dispatch one already-parsed request.
    pub fn dispatch(&self, req: &Json) -> Json {
        self.dispatch_job(req, &JobContext::default())
    }

    /// [`ExplainService::dispatch`] under a scheduler-provided
    /// [`JobContext`] (degradation decision + cancellation token).
    ///
    /// Every counted request records exactly one observation in its
    /// command's latency histogram, so the per-command counts sum to
    /// `requests` (the invariant CI's `promcheck` asserts). The one
    /// exception is a panicking dispatch — the scheduler's panic arm
    /// records the observation the unwind skipped here.
    pub fn dispatch_job(&self, req: &Json, job: &JobContext) -> Json {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let response = self.dispatch_inner(req, job);
        if response.get("ok") == Some(&Json::Bool(false)) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(obs) = &self.obs {
            let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("other");
            obs.record_command(cmd, t0.elapsed());
        }
        response
    }

    /// Dispatch one NDJSON line; the response is a single line without the
    /// trailing newline.
    pub fn dispatch_line(&self, line: &str) -> String {
        let response = match json::parse(line) {
            Ok(req) => self.dispatch(&req),
            Err(e) => {
                self.metrics.requests.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    // Unparseable lines count as requests, so they must
                    // also count as an `other` command observation.
                    obs.record_command("other", std::time::Duration::ZERO);
                }
                err("invalid_json", format!("invalid JSON: {e}"))
            }
        };
        response.to_string()
    }

    fn dispatch_inner(&self, req: &Json, job: &JobContext) -> Json {
        let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
            return err("bad_request", "request needs a string 'cmd'");
        };
        let session = req
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or("default");
        match cmd {
            "ping" => ok(vec![("pong", Json::Bool(true))]),
            "register" => self.register(req, session),
            "register_demo" => self.register_demo(req, session),
            "explain" => self.explain(req, session, job),
            "history" => self.history(session),
            "sessions" => ok(vec![(
                "sessions",
                Json::Arr(
                    self.manager
                        .session_names()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            )]),
            "metrics" => {
                let mut fields = vec![
                    ("server", self.metrics.to_json()),
                    ("cache", cache_json(&self.manager)),
                ];
                if let Some(sched) = self.scheduler.get() {
                    fields.push(("scheduler", sched.to_json()));
                }
                if let Some(obs) = &self.obs {
                    fields.push(("latency", latency_json(obs)));
                    fields.push((
                        "flight_recorder",
                        obj([
                            ("capacity", n(obs.recorder().capacity() as f64)),
                            ("recorded", n(obs.recorder().recorded() as f64)),
                        ]),
                    ));
                }
                ok(fields)
            }
            "debug_dump" => self.debug_dump(req),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                ok(vec![("shutting_down", Json::Bool(true))])
            }
            other => err("unknown_cmd", format!("unknown cmd {other:?}")),
        }
    }

    fn register(&self, req: &Json, session: &str) -> Json {
        let Some(table) = req.get("table").and_then(Json::as_str) else {
            return err("bad_request", "register needs a string 'table'");
        };
        let Some(specs) = req.get("columns").and_then(Json::as_arr) else {
            return err("bad_request", "register needs a 'columns' array");
        };
        let mut columns = Vec::with_capacity(specs.len());
        for spec in specs {
            match parse_column(spec) {
                Ok(c) => columns.push(c),
                Err(e) => return err("bad_request", e),
            }
        }
        let df = match DataFrame::new(columns) {
            Ok(df) => df,
            Err(e) => return err("bad_request", format!("invalid table: {e}")),
        };
        self.finish_register(session, table, df)
    }

    fn register_demo(&self, req: &Json, session: &str) -> Json {
        let dataset = req
            .get("dataset")
            .and_then(Json::as_str)
            .unwrap_or("spotify");
        let table = req.get("table").and_then(Json::as_str).unwrap_or(dataset);
        let rows = req
            .get("rows")
            .and_then(Json::as_usize)
            .unwrap_or(10_000)
            .clamp(1, 5_000_000);
        let seed = req.get("seed").and_then(Json::as_usize).unwrap_or(42) as u64;
        // Every generator is a pure function of (rows, seed) — the same
        // request line always registers the same bytes, which is what
        // makes workload traces compact *and* replayable: a trace ships
        // generator parameters, not data.
        let df = match dataset {
            "spotify" => fedex_data::spotify::generate(rows, seed),
            "bank" => fedex_data::bank::generate(rows, seed),
            "products" => fedex_data::products::generate_products(rows, seed),
            "sales" => {
                // Sales rows reference product rows; the parent table is
                // regenerated from (product_rows, seed) so a session can
                // register "products" and "sales" that join consistently
                // without shipping either.
                let product_rows = req
                    .get("product_rows")
                    .and_then(Json::as_usize)
                    .unwrap_or_else(|| (rows / 25).max(50))
                    .clamp(1, 1_000_000);
                let products = fedex_data::products::generate_products(product_rows, seed);
                fedex_data::products::generate_sales(&products, rows, seed)
            }
            "counties" => fedex_data::products::generate_counties(seed),
            "stores" => fedex_data::products::generate_stores(rows, seed),
            other => {
                return err(
                    "bad_request",
                    format!(
                        "unknown demo dataset {other:?} \
                         (want spotify|bank|products|sales|counties|stores)"
                    ),
                )
            }
        };
        self.finish_register(session, table, df)
    }

    fn finish_register(&self, session: &str, table: &str, df: DataFrame) -> Json {
        self.metrics.registers.fetch_add(1, Ordering::Relaxed);
        let rows = df.n_rows();
        let cols = df.n_cols();
        // The manager computes (and the frame memoizes) the content
        // digest here, once — every later explain over this table reads
        // it in O(1) instead of re-scanning 15 columns × n rows.
        let fp = self.manager.register(session, table, df);
        ok(vec![
            ("session", s(session)),
            ("table", s(table)),
            ("rows", n(rows as f64)),
            ("columns", n(cols as f64)),
            ("fingerprint", s(fp.to_hex())),
        ])
    }

    fn explain(&self, req: &Json, session: &str, job: &JobContext) -> Json {
        let Some(sql) = req.get("sql").and_then(Json::as_str) else {
            return err("bad_request", "explain needs a string 'sql'");
        };
        let save_as = req.get("save_as").and_then(Json::as_str);
        let width = req.get("width").and_then(Json::as_usize).unwrap_or(44);
        let top = req.get("top").and_then(Json::as_usize);
        let want_trace = req.get("trace").and_then(Json::as_bool).unwrap_or(false);
        self.metrics.explains.fetch_add(1, Ordering::Relaxed);
        let faults = self.faults();
        let degraded = job.degraded;
        let cancel = job.cancel.clone();
        // Scheduler-admitted jobs arrive with a trace id minted at
        // admission; direct dispatches (tests, CLI, inline control
        // commands) mint one lazily so traced explains always carry a
        // stable id.
        let trace_id = job
            .trace_id
            .or_else(|| self.obs.as_ref().map(|o| o.mint_trace().id));
        // Stage breakdown captured out of the summarize closure for the
        // slow-explain log (printed after the session lock is released).
        let mut slow_breakdown = String::new();
        // Summarize in place (`run_traced_configured_with`): a
        // SessionEntry owns the full input/output dataframes, which must
        // not be deep-cloned per wire request.
        let response = self.manager.run_traced_configured_with(
            session,
            sql,
            save_as,
            |config| {
                // Fault hooks fire here, inside the session write lock,
                // so an injected panic exercises the same poisoned-lock
                // recovery a real pipeline bug would.
                if let Some(plan) = &faults {
                    plan.inject_stage_delay();
                    if plan.should_panic() {
                        panic!("injected fault: panic mid-explain");
                    }
                }
                if degraded {
                    config.sample_size = Some(DEGRADE_SAMPLE_SIZE);
                }
                config.trace_id = trace_id;
                config.cancel = cancel;
            },
            |entry, trace| {
                if let Some(obs) = &self.obs {
                    for r in trace {
                        obs.record_stage(r.stage, r.elapsed);
                        obs.recorder().push(
                            trace_id.unwrap_or(0),
                            "stage",
                            "explain",
                            session,
                            r.stage,
                            "",
                            r.elapsed.as_micros() as u64,
                        );
                    }
                }
                slow_breakdown = trace
                    .iter()
                    .map(StageReport::describe)
                    .collect::<Vec<_>>()
                    .join("; ");
                // `top` trims the *response* — the ranked prefix is exactly
                // what `top_k_explanations` would have kept; history stays
                // complete.
                let shown = match top {
                    Some(k) => &entry.explanations[..k.min(entry.explanations.len())],
                    None => &entry.explanations[..],
                };
                let explanations = json::parse(&to_json_array(shown))
                    .expect("explanation serialization is valid JSON");
                let rendered = fedex_core::render_all(shown, width);
                let encode_micros = trace
                    .iter()
                    .find(|r| r.stage == "ScoreColumns")
                    .and_then(|r| r.sub.iter().find(|(name, _)| *name == "encode"))
                    .map_or(0.0, |(_, d)| d.as_micros() as f64);
                let total_micros: u64 = trace.iter().map(|r| r.elapsed.as_micros() as u64).sum();
                let mut fields = vec![
                    ("session", s(session)),
                    ("sql", s(sql)),
                    ("n_rows_in", n(entry.step.inputs[0].n_rows() as f64)),
                    ("n_rows_out", n(entry.step.output.n_rows() as f64)),
                    ("explanations", explanations),
                    ("rendered", s(rendered)),
                    ("stage_trace", trace_json(trace)),
                    ("encode_micros", n(encode_micros)),
                ];
                if degraded {
                    // The accuracy the client traded for latency: a 95%
                    // DKW bound on the sampled interestingness scores.
                    fields.push(("degraded", Json::Bool(true)));
                    fields.push(("sample_size", n(DEGRADE_SAMPLE_SIZE as f64)));
                    fields.push(("error_bound", n(sampling_error_bound(DEGRADE_SAMPLE_SIZE))));
                }
                if want_trace {
                    // `total_micros` is the sum of the per-stage spans by
                    // construction, so clients can check that the spans
                    // account for the whole pipeline wall time.
                    fields.push((
                        "trace",
                        obj([
                            ("id", trace_id.map_or(Json::Null, |id| s(trace_id_str(id)))),
                            ("total_micros", n(total_micros as f64)),
                            (
                                "queue_micros",
                                job.queue_wait_micros.map_or(Json::Null, |q| n(q as f64)),
                            ),
                            ("degraded", Json::Bool(degraded)),
                            ("coalesced", Json::Bool(job.waiters > 1)),
                            ("spans", trace_json(trace)),
                        ]),
                    ));
                }
                (ok(fields), total_micros)
            },
        );
        match response {
            Ok((Json::Obj(mut fields), total_micros)) => {
                if degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Full runs refresh the cold-run cost estimate the
                    // scheduler uses for deadline-driven degradation.
                    self.est_explain_micros
                        .store(total_micros, Ordering::Relaxed);
                }
                let slow_ms = self.slow_explain_ms.load(Ordering::Relaxed);
                if slow_ms > 0 && total_micros >= slow_ms.saturating_mul(1000) {
                    let id = trace_id.map_or_else(|| "-".to_string(), trace_id_str);
                    eprintln!(
                        "[slow-explain] {id} session={session} {}ms: {slow_breakdown}",
                        total_micros / 1000
                    );
                }
                // The cache snapshot is taken after the run, outside the
                // session lock.
                fields.push(("cache".to_string(), cache_json(&self.manager)));
                Json::Obj(fields)
            }
            Ok((other, _)) => other,
            Err(ExplainError::DeadlineExceeded) => {
                self.metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                err(
                    "deadline_exceeded",
                    "deadline budget exhausted before the explain completed",
                )
            }
            Err(ExplainError::Cancelled) => {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                err("cancelled", "explain cancelled: every waiter detached")
            }
            Err(e) => err("explain_failed", format!("explain failed: {e}")),
        }
    }

    /// The `debug_dump` command: the flight-recorder ring, optionally
    /// narrowed to one incident's or one trace's timeline, trimmed to the
    /// most recent `limit` events.
    fn debug_dump(&self, req: &Json) -> Json {
        let Some(obs) = &self.obs else {
            return ok(vec![
                ("enabled", Json::Bool(false)),
                ("events", Json::Arr(Vec::new())),
            ]);
        };
        let rec = obs.recorder();
        let events = if let Some(incident) = req.get("incident").and_then(Json::as_str) {
            rec.events_for_incident(incident)
        } else if let Some(t) = req.get("trace_id").and_then(Json::as_str) {
            match parse_trace_id(t) {
                Some(id) => rec.events_for_trace(id),
                None => {
                    return err(
                        "bad_request",
                        format!("bad trace_id {t:?} (want t-<16 hex digits>)"),
                    )
                }
            }
        } else {
            rec.dump()
        };
        let limit = req
            .get("limit")
            .and_then(Json::as_usize)
            .unwrap_or(usize::MAX);
        let skip = events.len().saturating_sub(limit);
        ok(vec![
            ("enabled", Json::Bool(true)),
            ("capacity", n(rec.capacity() as f64)),
            ("recorded", n(rec.recorded() as f64)),
            (
                "events",
                Json::Arr(events[skip..].iter().map(event_json).collect()),
            ),
        ])
    }

    /// The Prometheus text exposition served by `GET /metrics` when the
    /// client's `Accept` header asks for `text/plain`. Built from the
    /// same coherent snapshots as the JSON `metrics` command, so the two
    /// views never disagree on the conservation invariants.
    pub fn metrics_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        let counter = |w: &mut PromWriter, name: &str, help: &str, v: u64| {
            w.header(name, "counter", help);
            w.sample(name, &[], v as f64);
        };
        let gauge = |w: &mut PromWriter, name: &str, help: &str, v: u64| {
            w.header(name, "gauge", help);
            w.sample(name, &[], v as f64);
        };

        let m = self.metrics.snapshot();
        counter(
            &mut w,
            "fedex_requests_total",
            "Requests dispatched (all commands).",
            m.requests,
        );
        counter(
            &mut w,
            "fedex_errors_total",
            "Requests answered with ok:false.",
            m.errors,
        );
        counter(
            &mut w,
            "fedex_explains_total",
            "explain requests served.",
            m.explains,
        );
        counter(
            &mut w,
            "fedex_registers_total",
            "Tables registered.",
            m.registers,
        );
        counter(
            &mut w,
            "fedex_connections_total",
            "Connections accepted.",
            m.connections,
        );
        counter(
            &mut w,
            "fedex_panics_total",
            "Explains that panicked and were isolated.",
            m.panics,
        );
        counter(
            &mut w,
            "fedex_degraded_explains_total",
            "Explains served on the degraded sampling path.",
            m.degraded,
        );
        counter(
            &mut w,
            "fedex_deadline_exceeded_total",
            "deadline_exceeded responses produced.",
            m.deadline_exceeded,
        );
        counter(
            &mut w,
            "fedex_cancelled_total",
            "cancelled responses produced.",
            m.cancelled,
        );
        counter(
            &mut w,
            "fedex_disconnects_total",
            "Response writes that failed or timed out.",
            m.disconnects,
        );

        let c = self.manager.cache().metrics();
        counter(
            &mut w,
            "fedex_cache_hits_total",
            "Artifact-cache hits.",
            c.hits,
        );
        counter(
            &mut w,
            "fedex_cache_misses_total",
            "Artifact-cache misses.",
            c.misses,
        );
        counter(
            &mut w,
            "fedex_cache_evictions_total",
            "Artifact-cache evictions.",
            c.evictions,
        );
        counter(
            &mut w,
            "fedex_cache_rejected_total",
            "Artifact-cache inserts rejected by the admission policy.",
            c.rejected,
        );
        gauge(
            &mut w,
            "fedex_cache_entries",
            "Artifact-cache entries resident.",
            c.entries as u64,
        );
        gauge(
            &mut w,
            "fedex_cache_bytes",
            "Artifact-cache bytes resident.",
            c.bytes as u64,
        );
        gauge(
            &mut w,
            "fedex_cache_budget_bytes",
            "Artifact-cache byte budget.",
            c.budget as u64,
        );

        if let Some(sched) = self.scheduler.get() {
            let sc = sched.snapshot();
            w.header(
                "fedex_sched_admitted_total",
                "counter",
                "Requests admitted, by queue class.",
            );
            w.sample(
                "fedex_sched_admitted_total",
                &[("class", "control")],
                sc.admitted_control as f64,
            );
            w.sample(
                "fedex_sched_admitted_total",
                &[("class", "heavy")],
                sc.admitted_heavy as f64,
            );
            w.header(
                "fedex_sched_rejected_total",
                "counter",
                "Requests rejected at admission, by reason.",
            );
            w.sample(
                "fedex_sched_rejected_total",
                &[("reason", "overloaded")],
                sc.rejected_overloaded as f64,
            );
            w.sample(
                "fedex_sched_rejected_total",
                &[("reason", "quota")],
                sc.rejected_quota as f64,
            );
            counter(
                &mut w,
                "fedex_sched_coalesced_total",
                "Explains that attached to an identical in-flight job.",
                sc.coalesced,
            );
            counter(
                &mut w,
                "fedex_sched_completed_total",
                "Jobs fully served.",
                sc.completed,
            );
            counter(
                &mut w,
                "fedex_sched_degraded_total",
                "Explains admitted on the degraded path.",
                sc.degraded,
            );
            counter(
                &mut w,
                "fedex_sched_expired_total",
                "Jobs expired before dispatch.",
                sc.expired,
            );
            counter(
                &mut w,
                "fedex_sched_detached_total",
                "Waiters that left before their job's response.",
                sc.detached,
            );
            w.header(
                "fedex_sched_queued",
                "gauge",
                "Jobs queued right now, by class.",
            );
            w.sample(
                "fedex_sched_queued",
                &[("class", "control")],
                sc.queued_control_now as f64,
            );
            w.sample(
                "fedex_sched_queued",
                &[("class", "heavy")],
                sc.queued_heavy_now as f64,
            );
            gauge(
                &mut w,
                "fedex_sched_running_heavy",
                "Heavy jobs running right now.",
                sc.running_heavy_now,
            );
        }

        if let Some(obs) = &self.obs {
            w.header(
                "fedex_request_duration_seconds",
                "histogram",
                "End-to-end handling time per wire command.",
            );
            for (name, snap) in obs.command_snapshots() {
                w.histogram("fedex_request_duration_seconds", &[("cmd", name)], &snap);
            }
            w.header(
                "fedex_admission_wait_seconds",
                "histogram",
                "Queue wait before dispatch, per class.",
            );
            for (name, snap) in obs.admission_wait_snapshots() {
                w.histogram("fedex_admission_wait_seconds", &[("class", name)], &snap);
            }
            w.header(
                "fedex_service_time_seconds",
                "histogram",
                "Execution time after dispatch, per class.",
            );
            for (name, snap) in obs.service_time_snapshots() {
                w.histogram("fedex_service_time_seconds", &[("class", name)], &snap);
            }
            w.header(
                "fedex_stage_duration_seconds",
                "histogram",
                "Pipeline stage wall time, per stage.",
            );
            for (name, snap) in obs.stage_snapshots() {
                w.histogram("fedex_stage_duration_seconds", &[("stage", name)], &snap);
            }
            counter(
                &mut w,
                "fedex_flight_recorder_events_total",
                "Flight-recorder events ever recorded.",
                obs.recorder().recorded(),
            );
            gauge(
                &mut w,
                "fedex_flight_recorder_capacity",
                "Flight-recorder ring capacity.",
                obs.recorder().capacity() as u64,
            );
        }
        w.finish()
    }

    fn history(&self, session: &str) -> Json {
        // Summaries only — never clone the entries' dataframes.
        let entries = self.manager.history_with(session, |entries| {
            entries
                .iter()
                .map(|e| {
                    obj([
                        ("sql", s(e.sql.clone())),
                        ("saved_as", e.saved_as.clone().map_or(Json::Null, Json::Str)),
                        ("n_explanations", n(e.explanations.len() as f64)),
                        ("n_rows_out", n(e.step.output.n_rows() as f64)),
                    ])
                })
                .collect::<Vec<_>>()
        });
        ok(vec![
            ("session", s(session)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register_req() -> Json {
        json::parse(
            r#"{"cmd":"register","session":"s1","table":"songs","columns":[
                {"name":"popularity","type":"int","values":[80,20,75,10,90,15,85,25]},
                {"name":"decade","type":"str","values":["2010s","1970s","2010s","1970s","2010s","1980s","2010s","1970s"]}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn ping_and_unknown() {
        let svc = ExplainService::default();
        let r = svc.dispatch(&json::parse(r#"{"cmd":"ping"}"#).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        let r = svc.dispatch(&json::parse(r#"{"cmd":"frobnicate"}"#).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(svc.metrics().errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn register_then_explain_roundtrip() {
        let svc = ExplainService::default();
        let r = svc.dispatch(&register_req());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert_eq!(r.get("rows").and_then(Json::as_f64), Some(8.0));
        assert_eq!(
            r.get("fingerprint").and_then(Json::as_str).map(str::len),
            Some(32)
        );

        let req = json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM songs WHERE popularity > 65"}"#,
        )
        .unwrap();
        let r = svc.dispatch(&req);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert_eq!(r.get("n_rows_out").and_then(Json::as_f64), Some(4.0));
        assert!(!r.get("explanations").unwrap().as_arr().unwrap().is_empty());
        assert!(r
            .get("rendered")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Explanation 1"));
        // Second, identical request: the cache reports hits.
        let r2 = svc.dispatch(&req);
        let hits = r2
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(hits > 0.0, "warm request must report cache hits");

        let h = svc.dispatch(&json::parse(r#"{"cmd":"history","session":"s1"}"#).unwrap());
        assert_eq!(h.get("entries").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn explain_errors_are_responses() {
        let svc = ExplainService::default();
        let r = svc.dispatch(
            &json::parse(r#"{"cmd":"explain","session":"s1","sql":"SELEKT nope"}"#).unwrap(),
        );
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert!(r.get("error").and_then(Json::as_str).is_some());
    }

    #[test]
    fn register_demo_and_metrics() {
        let svc = ExplainService::default();
        let r = svc.dispatch(
            &json::parse(r#"{"cmd":"register_demo","session":"d","rows":500,"seed":7}"#).unwrap(),
        );
        assert_eq!(r.get("rows").and_then(Json::as_f64), Some(500.0));
        let m = svc.dispatch(&json::parse(r#"{"cmd":"metrics"}"#).unwrap());
        assert_eq!(
            m.get("server")
                .and_then(|x| x.get("registers"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(m.get("cache").and_then(|c| c.get("budget")).is_some());
    }

    #[test]
    fn register_demo_datasets_join_consistently() {
        let svc = ExplainService::default();
        for line in [
            r#"{"cmd":"register_demo","session":"w","dataset":"products","rows":150,"seed":9}"#,
            r#"{"cmd":"register_demo","session":"w","dataset":"sales","rows":2000,"product_rows":150,"seed":9}"#,
            r#"{"cmd":"register_demo","session":"w","dataset":"bank","table":"Bank","rows":400,"seed":9}"#,
        ] {
            let r = svc.dispatch(&json::parse(line).unwrap());
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{line}: {r:?}");
        }
        // The regenerated parent means the join is non-empty.
        let r = svc.dispatch(&json::parse(
            r#"{"cmd":"explain","session":"w","sql":"SELECT * FROM products INNER JOIN sales ON products.item = sales.item"}"#,
        ).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        assert!(r.get("n_rows_out").and_then(Json::as_f64).unwrap() > 0.0);
        // Unknown datasets are a typed refusal, not a panic.
        let r = svc.dispatch(
            &json::parse(r#"{"cmd":"register_demo","session":"w","dataset":"wat"}"#).unwrap(),
        );
        assert_eq!(r.get("code").and_then(Json::as_str), Some("bad_request"));
    }

    #[test]
    fn bad_column_uploads_are_rejected() {
        let svc = ExplainService::default();
        for bad in [
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"int","values":[1.5]}]}"#,
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"wat","values":[]}]}"#,
            r#"{"cmd":"register","table":"t","columns":[{"name":"x","type":"int","values":[1]},{"name":"y","type":"int","values":[1,2]}]}"#,
            r#"{"cmd":"register","table":"t"}"#,
        ] {
            let r = svc.dispatch(&json::parse(bad).unwrap());
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
    }

    #[test]
    fn dispatch_line_survives_garbage() {
        let svc = ExplainService::default();
        let out = svc.dispatch_line("{not json");
        assert!(out.contains("\"ok\":false"));
        let out = svc.dispatch_line(r#"{"cmd":"ping"}"#);
        assert!(out.contains("\"pong\":true"));
    }

    #[test]
    fn shutdown_sets_flag() {
        let svc = ExplainService::default();
        assert!(!svc.shutdown_requested());
        svc.dispatch(&json::parse(r#"{"cmd":"shutdown"}"#).unwrap());
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn save_as_chains_in_session() {
        let svc = ExplainService::default();
        svc.dispatch(&register_req());
        let r = svc.dispatch(&json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM songs WHERE popularity > 65","save_as":"popular"}"#,
        ).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
        let r = svc.dispatch(&json::parse(
            r#"{"cmd":"explain","session":"s1","sql":"SELECT * FROM popular WHERE popularity > 80"}"#,
        ).unwrap());
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
}
