//! # fedex-serve
//!
//! A concurrent explanation service over the FEDEX engine — the
//! "production-scale system serving heavy traffic" direction of the
//! roadmap, std-only (no crates.io in this environment).
//!
//! The paper frames FEDEX inside a single analyst's notebook loop; this
//! crate turns that loop into a shared service:
//!
//! * **sessions** — named, isolated catalogs + histories, managed by
//!   [`fedex_core::SessionManager`]; any number of clients explain
//!   concurrently;
//! * **cross-request artifact cache** — registered tables are
//!   content-fingerprinted; their dictionary-coded frames and per-step
//!   kernel caches are shared across requests and sessions
//!   ([`fedex_core::ArtifactCache`]), so warm explains skip the encode
//!   work that dominates a cold ScoreColumns stage;
//! * **transport** — newline-delimited JSON over TCP (one request object
//!   per line) with a minimal HTTP/1.1 fallback (`POST /api`,
//!   `GET /metrics`, `GET /healthz`) on the same port, served by a fixed
//!   worker pool.
//!
//! ```no_run
//! use std::sync::Arc;
//! use fedex_serve::{json, Client, ExplainService, Server, ServerConfig};
//!
//! let service = Arc::new(ExplainService::default());
//! let server = Server::bind(
//!     &ServerConfig { addr: "127.0.0.1:0".into(), workers: 4 },
//!     service,
//! ).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let resp = client
//!     .request(&json::parse(r#"{"cmd":"register_demo","session":"s","rows":1000}"#).unwrap())
//!     .unwrap();
//! assert_eq!(resp.get("ok"), Some(&json::Json::Bool(true)));
//! handle.stop().unwrap();
//! ```
//!
//! Determinism contract: explanations served over the wire are
//! byte-identical to the serial CLI path — the cache only memoizes pure
//! derivations, and the pipeline is deterministic under every execution
//! mode (pinned by the integration tests and the golden fixtures).

pub mod client;
pub mod json;
pub mod server;
pub mod service;

pub use client::Client;
pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{ExplainService, ServerMetrics};
