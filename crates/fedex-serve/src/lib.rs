//! # fedex-serve
//!
//! A concurrent explanation service over the FEDEX engine — the
//! "production-scale system serving heavy traffic" direction of the
//! roadmap, std-only (no crates.io in this environment).
//!
//! The paper frames FEDEX inside a single analyst's notebook loop; this
//! crate turns that loop into a shared service:
//!
//! * **sessions** — named, isolated catalogs + histories, managed by
//!   [`fedex_core::SessionManager`]; any number of clients explain
//!   concurrently;
//! * **cross-request artifact cache** — registered tables are
//!   content-fingerprinted *at register time*; their dictionary-coded
//!   frames and per-step kernel caches are shared across requests and
//!   sessions ([`fedex_core::ArtifactCache`], cost-aware eviction), so
//!   warm explains skip both the encode work and the fingerprint re-scan
//!   that dominate a cold ScoreColumns stage;
//! * **admission scheduling** — requests are classified (cheap control
//!   commands vs. explain-class work) and admitted into bounded priority
//!   queues with per-session quotas, explicit `overloaded` /
//!   `quota_exceeded` backpressure, and coalescing of identical
//!   concurrent explains ([`sched`]); a dedicated control worker keeps
//!   `ping`/`metrics` fast while long explains run;
//! * **transport** — newline-delimited JSON over TCP (one request object
//!   per line) with a minimal HTTP/1.1 fallback (`POST /api`,
//!   `GET /metrics`, `GET /healthz`, `GET /debug/requests`) on the same
//!   port; per-connection I/O threads feed the scheduler;
//! * **observability** — per-command/per-queue/per-stage latency
//!   histograms, request-scoped tracing (`"trace":true` on `explain`),
//!   Prometheus text exposition (`GET /metrics` with
//!   `Accept: text/plain`), and an always-on flight recorder dumpable
//!   via `debug_dump` / `GET /debug/requests` ([`fedex_obs`], wired in
//!   [`service`] and [`sched`]); see `docs/OBSERVABILITY.md`.
//!
//! The full wire protocol is documented in `docs/WIRE_PROTOCOL.md`; the
//! serving architecture in `docs/ARCHITECTURE.md`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use fedex_serve::{json, Client, ExplainService, Server, ServerConfig};
//!
//! let service = Arc::new(ExplainService::default());
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 4,
//!     ..Default::default()
//! };
//! let server = Server::bind(&config, service).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let resp = client
//!     .request(&json::parse(r#"{"cmd":"register_demo","session":"s","rows":1000}"#).unwrap())
//!     .unwrap();
//! assert_eq!(resp.get("ok"), Some(&json::Json::Bool(true)));
//! handle.stop().unwrap();
//! ```
//!
//! Determinism contract: explanations served over the wire are
//! byte-identical to the serial CLI path — the cache only memoizes pure
//! derivations, coalesced requests share one deterministic pipeline run,
//! and the pipeline is deterministic under every execution mode (pinned
//! by the integration tests and the golden fixtures).

#![deny(missing_docs)]

pub mod client;
pub mod fault;
pub mod json;
pub mod sched;
pub mod server;
pub mod service;

pub use client::{Client, RetryPolicy};
pub use fault::FaultPlan;
pub use json::{Json, JsonError};
pub use sched::{
    DegradeMode, RequestClass, SchedMetrics, SchedSnapshot, Scheduler, SchedulerConfig,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{ExplainService, JobContext, ServerMetrics, ServerSnapshot, DEGRADE_SAMPLE_SIZE};
