//! Golden explanation fixtures.
//!
//! These tests pin the *byte-identical* output of the explanation engine:
//! every explanation field that feeds presentation — including the raw
//! `f64` bit patterns of the scores — is serialized to a stable text form
//! and compared against a fixture committed to the repository. Any kernel
//! refactor (e.g. the code-based histogram layer) must leave these bytes
//! unchanged.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_fixtures`
//! after an *intentional* output change, and review the diff.
//!
//! `FEDEX_GOLDEN_EXEC` selects the execution mode (`serial`, `parallel`,
//! or a thread count; default serial) *against the same fixture* — CI
//! runs the suite under 1, 2, and 4 threads to assert the pipeline's
//! bit-identical-across-schedules contract end to end.

use std::fmt::Write as _;

use fedex::core::{ExecutionMode, Fedex};
use fedex::data::{build_workbench, DatasetScale, Workbench};
use fedex::prelude::Explanation;
use fedex::query::{parse_query, ExploratoryStep, Operation};

const FIXTURE: &str = "tests/fixtures/golden_explanations.txt";

fn workbench() -> Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 8_000,
        bank_rows: 500,
        product_rows: 100,
        sales_rows: 1_000,
        store_rows: 50,
        seed: 42,
    })
}

fn sql_step(wb: &Workbench, sql: &str) -> ExploratoryStep {
    parse_query(sql).unwrap().to_step(&wb.catalog).unwrap()
}

/// Serialize explanations with exact float bits; one block per explanation.
fn render(tag: &str, explanations: &[Explanation]) -> String {
    let mut out = String::new();
    writeln!(out, "== {tag} ({} explanations)", explanations.len()).unwrap();
    for (i, e) in explanations.iter().enumerate() {
        writeln!(out, "-- [{i}] column={}", e.column).unwrap();
        writeln!(out, "   measure={}", e.measure.name()).unwrap();
        writeln!(out, "   set={} attr={}", e.set_label, e.partition_attr).unwrap();
        writeln!(out, "   kind={}", e.partition_kind.name()).unwrap();
        writeln!(out, "   input={} rows={}", e.input_idx, e.set_rows.len()).unwrap();
        writeln!(
            out,
            "   interestingness=0x{:016x}",
            e.interestingness.to_bits()
        )
        .unwrap();
        writeln!(out, "   contribution=0x{:016x}", e.contribution.to_bits()).unwrap();
        writeln!(out, "   std=0x{:016x}", e.std_contribution.to_bits()).unwrap();
        writeln!(out, "   score=0x{:016x}", e.score.to_bits()).unwrap();
        writeln!(out, "   caption={}", e.caption).unwrap();
    }
    out
}

/// Execution mode under test: `FEDEX_GOLDEN_EXEC`, defaulting to serial.
/// Every mode must reproduce the same fixture bytes.
fn golden_exec() -> ExecutionMode {
    match std::env::var("FEDEX_GOLDEN_EXEC") {
        Ok(spec) => ExecutionMode::parse(&spec)
            .unwrap_or_else(|| panic!("bad FEDEX_GOLDEN_EXEC value: {spec:?}")),
        Err(_) => ExecutionMode::Serial,
    }
}

fn all_golden_output() -> String {
    let wb = workbench();
    let fedex = Fedex::new().with_execution(golden_exec());
    let mut out = String::new();

    for (tag, sql) in [
        (
            "filter/spotify",
            "SELECT * FROM spotify WHERE popularity > 65;",
        ),
        (
            "filter/bank",
            "SELECT * FROM Bank WHERE Attrition_Flag != 'Existing Customer';",
        ),
        (
            "groupby/spotify",
            "SELECT mean(loudness) FROM spotify GROUP BY year;",
        ),
        (
            "join/products-sales",
            "SELECT * FROM products INNER JOIN sales ON products.item = sales.item;",
        ),
    ] {
        let step = sql_step(&wb, sql);
        let ex = fedex.explain(&step).unwrap();
        out.push_str(&render(tag, &ex));
    }

    // Union is not in the SQL subset; build the step directly.
    let head = wb.spotify.head(2_000);
    let union = ExploratoryStep::run(vec![head, wb.spotify.clone()], Operation::Union).unwrap();
    let ex = fedex.explain(&union).unwrap();
    out.push_str(&render("union/spotify-head", &ex));

    out
}

#[test]
fn explanations_match_golden_fixture() {
    let got = all_golden_output();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(FIXTURE, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run UPDATE_GOLDEN=1 cargo test --test golden_fixtures");
    if got != want {
        // Show the first diverging line for a readable failure.
        for (ln, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at fixture line {}", ln + 1);
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "explanation output diverges from the golden fixture in length"
        );
        panic!("explanation output diverges from the golden fixture");
    }
}
