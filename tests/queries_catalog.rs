//! Integration test: the full 30-query workload of Tables 2–3 runs end to
//! end — parse, execute, explain — at a reduced scale.

use fedex::core::{Fedex, FedexConfig};
use fedex::data::{build_workbench, run_query, DatasetScale, QueryKind, QUERIES};

fn workbench() -> fedex::data::Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 2_500,
        bank_rows: 1_200,
        product_rows: 250,
        sales_rows: 4_000,
        store_rows: 100,
        seed: 17,
    })
}

#[test]
fn every_query_parses_executes_and_explains() {
    let wb = workbench();
    let fedex = Fedex::with_config(FedexConfig {
        sample_size: Some(5_000),
        top_k_explanations: Some(3),
        ..Default::default()
    });
    let mut explained = 0usize;
    for spec in &QUERIES {
        let step = run_query(spec, &wb.catalog)
            .unwrap_or_else(|e| panic!("query {} failed to run: {e}", spec.id));
        assert!(
            step.output.n_cols() > 0,
            "query {} has empty schema",
            spec.id
        );
        let explanations = fedex
            .explain(&step)
            .unwrap_or_else(|e| panic!("query {} failed to explain: {e}", spec.id));
        // Every explanation is well-formed.
        for e in &explanations {
            assert!(!e.caption.is_empty(), "query {}: empty caption", spec.id);
            assert!(
                e.contribution > 0.0,
                "query {}: non-positive contribution",
                spec.id
            );
            assert!(
                e.interestingness.is_finite() && e.interestingness >= 0.0,
                "query {}: bad interestingness",
                spec.id
            );
            assert!(
                !e.set_rows.is_empty(),
                "query {}: empty set-of-rows",
                spec.id
            );
            assert!(!e.chart.bars.is_empty(), "query {}: empty chart", spec.id);
        }
        if !explanations.is_empty() {
            explained += 1;
        }
    }
    // The workload is full of planted patterns; the vast majority of steps
    // must be explainable.
    assert!(
        explained >= 25,
        "only {explained}/30 queries produced explanations"
    );
}

#[test]
fn filter_and_join_queries_use_exceptionality() {
    let wb = workbench();
    let fedex = Fedex::sampling(5_000);
    for spec in &QUERIES {
        if spec.kind == QueryKind::GroupBy {
            continue;
        }
        let step = run_query(spec, &wb.catalog).unwrap();
        for e in fedex.explain(&step).unwrap() {
            assert_eq!(
                e.measure,
                fedex::core::InterestingnessKind::Exceptionality,
                "query {}",
                spec.id
            );
        }
    }
}

#[test]
fn group_by_queries_use_diversity() {
    let wb = workbench();
    let fedex = Fedex::sampling(5_000);
    for spec in &QUERIES {
        if spec.kind != QueryKind::GroupBy {
            continue;
        }
        let step = run_query(spec, &wb.catalog).unwrap();
        for e in fedex.explain(&step).unwrap() {
            assert_eq!(
                e.measure,
                fedex::core::InterestingnessKind::Diversity,
                "query {}",
                spec.id
            );
        }
    }
}

#[test]
fn skyline_explanations_are_mutually_non_dominated() {
    let wb = workbench();
    let fedex = Fedex::new();
    for spec in QUERIES
        .iter()
        .filter(|q| q.dataset == fedex::data::Dataset::Spotify)
    {
        let step = run_query(spec, &wb.catalog).unwrap();
        let ex = fedex.explain(&step).unwrap();
        for a in &ex {
            for b in &ex {
                let dominated = b.interestingness > a.interestingness
                    && b.std_contribution > a.std_contribution;
                assert!(
                    !dominated,
                    "query {}: ({}, {}) dominated by ({}, {})",
                    spec.id, a.column, a.set_label, b.column, b.set_label
                );
            }
        }
    }
}

#[test]
fn nested_query_12_explains_inner_output() {
    let wb = workbench();
    let spec = fedex::data::query_by_id(12).unwrap();
    let step = run_query(spec, &wb.catalog).unwrap();
    // The step's input is the *attrited customers* dataframe, not the full
    // Bank table.
    assert!(step.inputs[0].n_rows() < wb.bank.n_rows());
    assert!(step.output.n_rows() <= step.inputs[0].n_rows());
}
