//! Integration tests reproducing the paper's worked examples (§1, §3.2,
//! §3.4, Example 3.10) on the planted synthetic Spotify data.

use fedex::core::{
    frequency_partition, standardized, ContributionComputer, Fedex, InterestingnessKind, Sample,
};
use fedex::data::{build_workbench, DatasetScale};
use fedex::query::{parse_query, ExploratoryStep};

fn workbench() -> fedex::data::Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 20_000,
        bank_rows: 500,
        product_rows: 100,
        sales_rows: 1_000,
        store_rows: 50,
        seed: 42,
    })
}

fn popular_filter_step(wb: &fedex::data::Workbench) -> ExploratoryStep {
    parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap()
}

/// Example 3.2: for the `popularity > 65` filter, 'decade' is among the
/// most interesting columns (the paper reports decade 0.56, year 0.54,
/// loudness 0.41 — ordering matters, not the absolute values).
#[test]
fn example_3_2_decade_is_most_interesting() {
    let wb = workbench();
    let step = popular_filter_step(&wb);
    let scores = Fedex::new().interesting_columns(&step).unwrap();
    assert!(!scores.is_empty());
    let top3: Vec<&str> = scores.iter().take(3).map(|(c, _)| c.as_str()).collect();
    assert!(
        top3.contains(&"decade") || top3.contains(&"year"),
        "expected decade/year among top columns, got {top3:?} (scores {scores:?})"
    );
    // All exceptionality scores live in [0, 1].
    assert!(scores.iter().all(|(_, s)| (0.0..=1.0).contains(s)));
}

/// Example 3.4: the contribution of the 2010s set to the 'decade' column
/// is positive and the largest in its partition.
#[test]
fn example_3_4_contribution_of_2010s() {
    let wb = workbench();
    let step = popular_filter_step(&wb);
    let computer = ContributionComputer::new(&step, InterestingnessKind::Exceptionality);
    let partition = frequency_partition(&step.inputs[0], 0, "decade", 10)
        .unwrap()
        .unwrap();
    let raw = computer
        .contributions(&partition, "decade")
        .unwrap()
        .unwrap();

    let idx_2010s = partition
        .sets
        .iter()
        .position(|s| s.label == "2010s")
        .unwrap();
    assert!(
        raw[idx_2010s] > 0.0,
        "2010s contribution {}",
        raw[idx_2010s]
    );
    let best = raw
        .iter()
        .take(partition.n_sets())
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(best, idx_2010s, "2010s must contribute most; raw = {raw:?}");

    // Standardized contribution of the winner is positive and maximal.
    let std = standardized(&raw);
    assert!(std[idx_2010s] > 0.0);
}

/// Fig. 2a end-to-end: the filter's explanation highlights the 2010s and
/// its caption follows the paper's template.
#[test]
fn fig_2a_filter_explanation() {
    let wb = workbench();
    let step = popular_filter_step(&wb);
    let explanations = Fedex::new().explain(&step).unwrap();
    let e = explanations
        .iter()
        .find(|e| e.column == "decade" && e.set_label == "2010s")
        .expect("the planted 2010s explanation must be on the skyline");
    assert!(e.caption.contains("significant change in distribution"));
    assert!(e.caption.contains("'decade'"));
    assert!(e.caption.contains("2010s"));
    assert!(e
        .chart
        .bars
        .iter()
        .any(|b| b.highlighted && b.label == "2010s"));
    // After-frequency of the highlighted set must exceed its before.
    let bar = e.chart.bars.iter().find(|b| b.highlighted).unwrap();
    assert!(bar.after.unwrap() > bar.value);
}

/// Fig. 2b end-to-end: the group-by explanation highlights the quiet
/// 1990s via the year → decade many-to-one partition.
#[test]
fn fig_2b_group_by_explanation() {
    let wb = workbench();
    let step = parse_query(
        "SELECT mean(loudness), mean(danceability) FROM spotify WHERE year >= 1990 GROUP BY year;",
    )
    .unwrap()
    .to_step(&wb.catalog)
    .unwrap();
    let explanations = Fedex::new().explain(&step).unwrap();
    assert!(!explanations.is_empty());
    let e = explanations
        .iter()
        .find(|e| e.column == "mean_loudness" && e.set_label.contains("1990"))
        .unwrap_or_else(|| {
            panic!(
                "expected a 1990s loudness explanation, got {:?}",
                explanations
                    .iter()
                    .map(|e| (&e.column, &e.set_label))
                    .collect::<Vec<_>>()
            )
        });
    assert_eq!(e.measure, InterestingnessKind::Diversity);
    assert!(e.caption.contains("significant diversity"));
    assert!(
        e.caption.contains("lower than the mean"),
        "caption: {}",
        e.caption
    );
}

/// §3.3: the diversity measure on group-by steps can produce negative
/// contributions, and such sets never become explanations.
#[test]
fn negative_contributions_never_explained() {
    let wb = workbench();
    let step = parse_query("SELECT mean(loudness) FROM spotify GROUP BY year;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    let explanations = Fedex::new().explain(&step).unwrap();
    for e in &explanations {
        assert!(
            e.contribution > 0.0,
            "explanation with C = {}",
            e.contribution
        );
    }
}

/// Interestingness via sampling tracks the exact score (§3.7).
#[test]
fn sampling_interestingness_close_to_exact() {
    let wb = workbench();
    let step = popular_filter_step(&wb);
    let exact = fedex::core::score_column(
        &step,
        "decade",
        InterestingnessKind::Exceptionality,
        &Sample::full(1),
    )
    .unwrap()
    .unwrap();
    let sampled_fedex = Fedex::sampling(5_000);
    let scores = sampled_fedex.interesting_columns(&step).unwrap();
    let sampled = scores.iter().find(|(c, _)| c == "decade").unwrap().1;
    assert!(
        (exact - sampled).abs() < 0.05,
        "exact {exact:.3} vs 5K-sampled {sampled:.3}"
    );
}
