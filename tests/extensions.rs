//! Integration tests for the §3.8 extension points: user-specified
//! columns, custom partitions, and custom interestingness measures.

use fedex::core::{
    Compactness, CustomMeasure, Fedex, FedexConfig, PartitionKind, RowPartition, SetMeta,
    Surprisingness, IGNORE,
};
use fedex::data::{build_workbench, DatasetScale};
use fedex::query::{parse_query, ExploratoryStep};

fn workbench() -> fedex::data::Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 5_000,
        bank_rows: 500,
        product_rows: 100,
        sales_rows: 1_000,
        store_rows: 50,
        seed: 31,
    })
}

fn filter_step(wb: &fedex::data::Workbench) -> ExploratoryStep {
    parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap()
}

/// §3.8 "custom partitioning of rows": a user-defined half-century
/// partition of the year column participates alongside the mined ones.
#[test]
fn custom_partition_participates() {
    let wb = workbench();
    let step = filter_step(&wb);
    let years = step.inputs[0].column("year").unwrap();

    // Half-century partition: 1920–1969 / 1970–2023.
    let mut assignment = Vec::with_capacity(years.len());
    let mut old = 0usize;
    let mut new = 0usize;
    for v in years.iter() {
        let y = v.as_i64().unwrap();
        if y < 1970 {
            assignment.push(0u32);
            old += 1;
        } else {
            assignment.push(1u32);
            new += 1;
        }
    }
    let custom = RowPartition::new(
        0,
        "year",
        PartitionKind::Frequency,
        vec![
            SetMeta {
                label: "pre-1970".to_string(),
                size: old,
            },
            SetMeta {
                label: "1970-onwards".to_string(),
                size: new,
            },
        ],
        assignment,
        0,
    );
    custom.validate().unwrap();

    let fedex = Fedex::new();
    let with = fedex.explain_with_partitions(&step, vec![custom]).unwrap();
    // The popular set is dominated by post-1970 songs (all 2010s), so the
    // custom '1970-onwards' set should surface as an explanation for some
    // column.
    assert!(
        with.iter()
            .any(|e| e.set_label == "1970-onwards" || e.set_label == "pre-1970"),
        "custom sets absent: {:?}",
        with.iter()
            .map(|e| (&e.column, &e.set_label))
            .collect::<Vec<_>>()
    );
}

/// Invalid custom partitions are rejected, not silently used.
#[test]
fn invalid_custom_partition_rejected() {
    let wb = workbench();
    let step = filter_step(&wb);
    // Wrong length assignment.
    let bad = RowPartition::new(
        0,
        "year",
        PartitionKind::Frequency,
        vec![SetMeta {
            label: "x".to_string(),
            size: 1,
        }],
        vec![0u32],
        0,
    );
    assert!(Fedex::new()
        .explain_with_partitions(&step, vec![bad])
        .is_err());

    // Inconsistent sizes.
    let bad = RowPartition::new(
        0,
        "year",
        PartitionKind::Frequency,
        vec![SetMeta {
            label: "x".to_string(),
            size: 99,
        }],
        vec![IGNORE; step.inputs[0].n_rows()],
        step.inputs[0].n_rows(),
    );
    assert!(Fedex::new()
        .explain_with_partitions(&step, vec![bad])
        .is_err());
}

/// §3.8 "general interestingness functions": the surprisingness measure
/// drives the whole pipeline through the Def. 3.3 re-run path.
#[test]
fn custom_measure_end_to_end() {
    let wb = workbench();
    let step = filter_step(&wb);
    let fedex = Fedex::with_config(FedexConfig {
        top_k_columns: 2,
        set_counts: vec![5],
        top_k_explanations: Some(3),
        ..Default::default()
    });
    let ex = fedex.explain_with_measure(&step, &Surprisingness).unwrap();
    assert!(!ex.is_empty());
    for e in &ex {
        assert!(e.contribution > 0.0);
        assert!(!e.caption.is_empty());
    }
}

/// Compactness applies to group-by outputs.
#[test]
fn compactness_measure_on_group_by() {
    let wb = workbench();
    let step = parse_query("SELECT count FROM spotify GROUP BY genre;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    // Genres are zipf-distributed → the count column is concentrated.
    let score = Compactness.score(&step, "count").unwrap().unwrap();
    assert!(score > 0.05, "compactness {score}");
    let ex = Fedex::with_config(FedexConfig {
        set_counts: vec![5],
        top_k_columns: 1,
        top_k_explanations: Some(2),
        ..Default::default()
    })
    .explain_with_measure(&step, &Compactness)
    .unwrap();
    // Removing the dominant genre reduces concentration → it explains.
    assert!(!ex.is_empty());
}

/// User-specified columns still compose with custom partitions.
#[test]
fn target_columns_compose_with_custom_partitions() {
    let wb = workbench();
    let step = filter_step(&wb);
    let fedex = Fedex::with_config(FedexConfig {
        target_columns: Some(vec!["loudness".to_string()]),
        ..Default::default()
    });
    let ex = fedex.explain_with_partitions(&step, vec![]).unwrap();
    assert!(ex.iter().all(|e| e.column == "loudness"));
}
