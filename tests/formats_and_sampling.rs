//! Integration tests for the I/O surfaces: CSV round-trips of the
//! generated datasets, JSON serialization of explanations, and the
//! FEDEX-Sampling accuracy contract at full coverage.

use fedex::core::{to_json_array, Fedex};
use fedex::data::{build_workbench, run_query, DatasetScale};
use fedex::frame::{read_csv_str, write_csv_string};

fn workbench() -> fedex::data::Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 1_500,
        bank_rows: 800,
        product_rows: 200,
        sales_rows: 2_000,
        store_rows: 60,
        seed: 23,
    })
}

#[test]
fn generated_datasets_round_trip_through_csv() {
    let wb = workbench();
    for (name, df) in [
        ("spotify", &wb.spotify),
        ("bank", &wb.bank),
        ("products", &wb.products),
    ] {
        let text = write_csv_string(df);
        let back = read_csv_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.n_rows(), df.n_rows(), "{name} rows");
        assert_eq!(back.n_cols(), df.n_cols(), "{name} cols");
        assert_eq!(back.column_names(), df.column_names(), "{name} names");
        // Spot-check random cells survive the round trip.
        for r in [0, df.n_rows() / 2, df.n_rows() - 1] {
            for c in df.column_names() {
                let orig = df.get(r, c).unwrap();
                let new = back.get(r, c).unwrap();
                if let (Some(a), Some(b)) = (orig.as_f64(), new.as_f64()) {
                    assert!((a - b).abs() < 1e-9, "{name}[{r}][{c}]: {a} vs {b}");
                } else {
                    assert_eq!(orig.to_string(), new.to_string(), "{name}[{r}][{c}]");
                }
            }
        }
    }
}

#[test]
fn explanations_serialize_to_valid_json_shape() {
    let wb = workbench();
    let step = run_query(fedex::data::query_by_id(6).unwrap(), &wb.catalog).unwrap();
    let ex = Fedex::new().explain(&step).unwrap();
    assert!(!ex.is_empty());
    let json = to_json_array(&ex);
    // Structural sanity without a JSON parser dependency: balanced
    // brackets/braces and the required keys present.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces");
    assert!(json.starts_with('[') && json.ends_with(']'));
    for key in [
        "\"column\"",
        "\"interestingness\"",
        "\"std_contribution\"",
        "\"caption\"",
        "\"chart\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    // No raw control characters leaked into strings.
    assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
}

#[test]
fn full_coverage_sampling_equals_exact() {
    let wb = workbench();
    for id in [6u8, 8, 11, 21, 28] {
        let step = run_query(fedex::data::query_by_id(id).unwrap(), &wb.catalog).unwrap();
        let exact = Fedex::new().explain(&step).unwrap();
        // Sample size larger than every table → identical pipeline.
        let sampled = Fedex::sampling(1_000_000).explain(&step).unwrap();
        assert_eq!(exact.len(), sampled.len(), "query {id}");
        for (a, b) in exact.iter().zip(&sampled) {
            assert_eq!(a.column, b.column, "query {id}");
            assert_eq!(a.set_label, b.set_label, "query {id}");
            assert!((a.interestingness - b.interestingness).abs() < 1e-12);
            assert!((a.std_contribution - b.std_contribution).abs() < 1e-12);
        }
    }
}

#[test]
fn sampling_is_deterministic_per_seed() {
    let wb = workbench();
    let step = run_query(fedex::data::query_by_id(6).unwrap(), &wb.catalog).unwrap();
    let a = Fedex::sampling(500).explain(&step).unwrap();
    let b = Fedex::sampling(500).explain(&step).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.column, y.column);
        assert_eq!(x.set_label, y.set_label);
        assert_eq!(x.interestingness, y.interestingness);
    }
}
