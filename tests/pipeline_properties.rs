//! Property-based integration tests over the whole pipeline: random small
//! dataframes and operations must uphold the paper's definitional
//! invariants (Defs. 3.3, 3.8, §3.6).

use fedex::core::{
    build_partitions_for_attr, standardized, ContributionComputer, Fedex, InterestingnessKind,
    IGNORE,
};
use fedex::frame::{Column, DataFrame};
use fedex::query::{Aggregate, ExploratoryStep, Expr, Operation};
use proptest::prelude::*;

/// A random small dataframe: a categorical group column, a low-cardinality
/// int column, and a float measure.
fn arb_frame() -> impl Strategy<Value = DataFrame> {
    let row = (0u8..4, 0i64..6, -50i64..50);
    proptest::collection::vec(row, 4..60).prop_map(|rows| {
        let cats = ["a", "b", "c", "d"];
        DataFrame::new(vec![
            Column::from_strs("g", rows.iter().map(|r| cats[r.0 as usize]).collect()),
            Column::from_ints("k", rows.iter().map(|r| r.1).collect()),
            Column::from_floats("v", rows.iter().map(|r| r.2 as f64 / 3.0).collect()),
        ])
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Def. 3.8: every partition is a disjoint cover of the input rows.
    #[test]
    fn partitions_are_disjoint_covers(df in arb_frame(), n in 2usize..8) {
        for attr in ["g", "k", "v"] {
            let parts = build_partitions_for_attr(&df, 0, attr, &[n], 7).unwrap();
            for p in parts {
                p.validate().unwrap();
                prop_assert_eq!(p.assignment.len(), df.n_rows());
                let covered: usize =
                    p.sets.iter().map(|s| s.size).sum::<usize>() + p.ignore_size;
                prop_assert_eq!(covered, df.n_rows());
            }
        }
    }

    /// Def. 3.3: incremental contribution equals the literal re-run, for
    /// filter steps under exceptionality.
    #[test]
    fn filter_contribution_matches_rerun(df in arb_frame(), threshold in -10i64..10) {
        let op = Operation::filter(Expr::col("k").gt(Expr::lit(threshold)));
        let step = ExploratoryStep::run(vec![df], op).unwrap();
        let cc = ContributionComputer::new(&step, InterestingnessKind::Exceptionality);
        for p in build_partitions_for_attr(&step.inputs[0], 0, "g", &[3], 7).unwrap() {
            if let Some(fast) = cc.contributions(&p, "v").unwrap() {
                for (s, &c_fast) in fast.iter().enumerate().take(p.n_sets()) {
                    let rows = p.rows_by_set().rows_of(s as u32);
                    let slow = cc.contribution_by_rerun(0, rows, "v").unwrap().unwrap();
                    prop_assert!((c_fast - slow).abs() < 1e-9,
                        "set {}: fast {} vs rerun {}", s, c_fast, slow);
                }
            }
        }
    }

    /// Def. 3.3 for group-by steps under diversity, including the
    /// ignore-set slot.
    #[test]
    fn groupby_contribution_matches_rerun(df in arb_frame()) {
        let op = Operation::group_by(vec!["g"], vec![Aggregate::mean("v")]);
        let step = ExploratoryStep::run(vec![df], op).unwrap();
        let cc = ContributionComputer::new(&step, InterestingnessKind::Diversity);
        for p in build_partitions_for_attr(&step.inputs[0], 0, "k", &[3], 7).unwrap() {
            if let Some(fast) = cc.contributions(&p, "mean_v").unwrap() {
                for (slot, &c_fast) in fast.iter().enumerate() {
                    let code = if slot == p.n_sets() { IGNORE } else { slot as u32 };
                    let rows: Vec<usize> = p
                        .assignment
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &a)| (a == code).then_some(i))
                        .collect();
                    let slow =
                        cc.contribution_by_rerun(0, &rows, "mean_v").unwrap().unwrap();
                    prop_assert!((c_fast - slow).abs() < 1e-9,
                        "slot {}: fast {} vs rerun {}", slot, c_fast, slow);
                }
            }
        }
    }

    /// §3.6: standardization is mean-zero and order-preserving.
    #[test]
    fn standardization_properties(raw in proptest::collection::vec(-1.0f64..1.0, 2..12)) {
        let z = standardized(&raw);
        prop_assert_eq!(z.len(), raw.len());
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-9);
        for i in 0..raw.len() {
            for j in 0..raw.len() {
                if raw[i] < raw[j] {
                    prop_assert!(z[i] <= z[j] + 1e-12);
                }
            }
        }
    }

    /// End-to-end sanity on random data: explanations (when any) have
    /// positive contribution, non-empty artifacts, and a non-dominated
    /// score pair.
    #[test]
    fn explanations_well_formed_on_random_data(df in arb_frame(), threshold in -10i64..10) {
        let op = Operation::filter(Expr::col("k").gt(Expr::lit(threshold)));
        let step = ExploratoryStep::run(vec![df], op).unwrap();
        let ex = Fedex::new().explain(&step).unwrap();
        for e in &ex {
            prop_assert!(e.contribution > 0.0);
            prop_assert!(!e.caption.is_empty());
            prop_assert!(!e.set_rows.is_empty());
            prop_assert!(e.set_rows.iter().all(|&r| r < step.inputs[0].n_rows()));
        }
        for a in &ex {
            for b in &ex {
                prop_assert!(!(b.interestingness > a.interestingness
                    && b.std_contribution > a.std_contribution));
            }
        }
    }

    /// The identity filter never produces explanations (§3.3: no positive
    /// contribution without deviation).
    #[test]
    fn identity_filter_produces_nothing(df in arb_frame()) {
        let op = Operation::filter(Expr::col("k").ge(Expr::lit(-1000i64)));
        let step = ExploratoryStep::run(vec![df], op).unwrap();
        let ex = Fedex::new().explain(&step).unwrap();
        prop_assert!(ex.is_empty(), "identity filter explained: {:?}",
            ex.iter().map(|e| (&e.column, &e.set_label)).collect::<Vec<_>>());
    }
}
