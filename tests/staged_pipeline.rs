//! Golden tests for the staged pipeline engine on the paper's worked
//! examples: the filter and group-by steps of §3 must produce identical
//! top-k explanations under serial and parallel execution, and the stage
//! trace must account for the whole run.

use fedex::core::pipeline::{ExplainPipeline, Stage};
use fedex::core::{ExecutionMode, Fedex, FedexConfig};
use fedex::data::{build_workbench, DatasetScale, Workbench};
use fedex::query::parse_query;

fn workbench() -> Workbench {
    build_workbench(&DatasetScale {
        spotify_rows: 8_000,
        bank_rows: 500,
        product_rows: 100,
        sales_rows: 1_000,
        store_rows: 50,
        seed: 42,
    })
}

fn assert_identical(a: &[fedex::prelude::Explanation], b: &[fedex::prelude::Explanation]) {
    assert_eq!(a.len(), b.len(), "explanation counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.column, y.column);
        assert_eq!(x.set_label, y.set_label);
        assert_eq!(x.partition_attr, y.partition_attr);
        assert_eq!(x.interestingness.to_bits(), y.interestingness.to_bits());
        assert_eq!(x.contribution.to_bits(), y.contribution.to_bits());
        assert_eq!(x.std_contribution.to_bits(), y.std_contribution.to_bits());
        assert_eq!(x.score.to_bits(), y.score.to_bits());
        assert_eq!(x.caption, y.caption);
    }
}

/// The paper's filter example (`popularity > 65`): identical explanations
/// bit-for-bit under serial, auto-parallel, and fixed-thread execution.
#[test]
fn filter_example_identical_across_execution_modes() {
    let wb = workbench();
    let step = parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    let serial = Fedex::new()
        .with_execution(ExecutionMode::Serial)
        .explain(&step)
        .unwrap();
    assert!(!serial.is_empty(), "filter example must be explainable");
    for mode in [
        ExecutionMode::Parallel,
        ExecutionMode::Threads(3),
        ExecutionMode::Threads(16),
    ] {
        let other = Fedex::new().with_execution(mode).explain(&step).unwrap();
        assert_identical(&serial, &other);
    }
}

/// The paper's group-by example (mean loudness per year): identical
/// explanations under serial and parallel execution, including with
/// FEDEX-Sampling enabled.
#[test]
fn group_by_example_identical_across_execution_modes() {
    let wb = workbench();
    let step = parse_query("SELECT mean(loudness) FROM spotify GROUP BY year;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    let serial = Fedex::new()
        .with_execution(ExecutionMode::Serial)
        .explain(&step)
        .unwrap();
    assert!(!serial.is_empty(), "group-by example must be explainable");
    let parallel = Fedex::new()
        .with_execution(ExecutionMode::Threads(4))
        .explain(&step)
        .unwrap();
    assert_identical(&serial, &parallel);

    let sampled_serial = Fedex::with_config(FedexConfig {
        sample_size: Some(2_000),
        execution: ExecutionMode::Serial,
        ..Default::default()
    })
    .explain(&step)
    .unwrap();
    let sampled_parallel = Fedex::with_config(FedexConfig {
        sample_size: Some(2_000),
        execution: ExecutionMode::Threads(4),
        ..Default::default()
    })
    .explain(&step)
    .unwrap();
    assert_identical(&sampled_serial, &sampled_parallel);
}

/// The stage trace names all five Algorithm 1 stages in order and its
/// item counts are consistent with the result.
#[test]
fn stage_trace_covers_algorithm_one() {
    let wb = workbench();
    let step = parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    let (ex, trace) = Fedex::new().explain_traced(&step).unwrap();
    let stages: Vec<&str> = trace.iter().map(|r| r.stage).collect();
    assert_eq!(
        stages,
        vec![
            "ScoreColumns",
            "PartitionRows",
            "Contribute",
            "Skyline",
            "Present"
        ]
    );
    assert_eq!(trace[4].items, ex.len());
    // Skyline can only shrink the candidate set.
    assert!(trace[3].items <= trace[2].items);
}

/// Stages compose individually: running ScoreColumns + PartitionRows by
/// hand through the public Stage API matches the `Fedex` facade.
#[test]
fn stages_compose_like_the_facade() {
    use fedex::core::pipeline::{PartitionRows, ScoreColumns};

    let wb = workbench();
    let step = parse_query("SELECT * FROM spotify WHERE popularity > 65;")
        .unwrap()
        .to_step(&wb.catalog)
        .unwrap();
    let config = FedexConfig::default();
    let pipeline = ExplainPipeline::new(&step, &config);
    let ctx = pipeline.context();

    let scored = ScoreColumns::builtin().run(ctx, ()).unwrap();
    assert_eq!(
        scored.scores,
        Fedex::new().interesting_columns(&step).unwrap()
    );
    assert_eq!(
        scored.top.len(),
        config.top_k_columns.min(scored.scores.len())
    );

    let partitioned = PartitionRows { extra: Vec::new() }
        .run(ctx, scored)
        .unwrap();
    let facade = Fedex::new().build_partitions(&step).unwrap();
    assert_eq!(partitioned.partitions.len(), facade.len());
}
